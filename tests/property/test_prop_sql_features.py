"""Property-based tests for aggregation, DISTINCT and predicate desugaring."""

import re
from collections import Counter, defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Database
from repro.expr.compiler import like_pattern_to_regex
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string

rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=-100, max_value=100),
    ),
    min_size=1,
    max_size=120,
)


def make_db(data):
    db = Database()
    db.create_table(
        "t", Schema([Column("g", INTEGER), Column("v", INTEGER)]), data
    )
    db.analyze()
    return db


class TestAggregationProperties:
    @settings(max_examples=30, deadline=None)
    @given(rows)
    def test_group_by_matches_python_groupby(self, data):
        db = make_db(data)
        result = db.execute(
            "select g, count(*), sum(v), min(v), max(v) from t group by g"
        )
        expected = defaultdict(list)
        for g, v in data:
            expected[g].append(v)
        assert len(result.rows) == len(expected)
        for g, count, total, lo, hi in result.rows:
            vals = expected[g]
            assert count == len(vals)
            assert total == sum(vals)
            assert lo == min(vals)
            assert hi == max(vals)

    @settings(max_examples=30, deadline=None)
    @given(rows)
    def test_global_count_equals_row_count(self, data):
        db = make_db(data)
        assert db.execute("select count(*) from t").rows == [(len(data),)]

    @settings(max_examples=30, deadline=None)
    @given(rows, st.integers(min_value=0, max_value=20))
    def test_having_is_a_filter_over_groups(self, data, threshold):
        db = make_db(data)
        with_having = db.execute(
            f"select g, count(*) from t group by g having count(*) > {threshold}"
        )
        without = db.execute("select g, count(*) from t group by g")
        expected = [(g, c) for g, c in without.rows if c > threshold]
        assert sorted(with_having.rows) == sorted(expected)


class TestDistinctProperties:
    @settings(max_examples=30, deadline=None)
    @given(rows)
    def test_distinct_equals_set(self, data):
        db = make_db(data)
        result = db.execute("select distinct g from t")
        assert sorted(r[0] for r in result.rows) == sorted({g for g, _ in data})

    @settings(max_examples=30, deadline=None)
    @given(rows)
    def test_distinct_never_increases_cardinality(self, data):
        db = make_db(data)
        plain = db.execute("select g, v from t")
        distinct = db.execute("select distinct g, v from t")
        assert len(distinct.rows) <= len(plain.rows)
        assert Counter(distinct.rows) == Counter(set(plain.rows))


class TestDesugaringProperties:
    @settings(max_examples=30, deadline=None)
    @given(rows, st.integers(-100, 100), st.integers(-100, 100))
    def test_between_equals_range_conjunction(self, data, a, b):
        lo, hi = min(a, b), max(a, b)
        db = make_db(data)
        sugared = db.execute(f"select v from t where v between {lo} and {hi}")
        plain = db.execute(f"select v from t where v >= {lo} and v <= {hi}")
        assert Counter(sugared.rows) == Counter(plain.rows)

    @settings(max_examples=30, deadline=None)
    @given(rows, st.lists(st.integers(-100, 100), min_size=1, max_size=5))
    def test_in_equals_or_chain(self, data, values):
        db = make_db(data)
        in_list = ", ".join(str(v) for v in values)
        sugared = db.execute(f"select v from t where v in ({in_list})")
        expected = Counter((v,) for _, v in data if v in set(values))
        assert Counter(sugared.rows) == expected


like_patterns = st.text(
    alphabet=st.sampled_from(list("ab%_.x")), min_size=0, max_size=8
)
like_subjects = st.text(
    alphabet=st.sampled_from(list("ab.x")), min_size=0, max_size=10
)


class TestLikeProperties:
    @given(like_patterns, like_subjects)
    def test_regex_translation_semantics(self, pattern, subject):
        """The compiled regex matches iff a naive LIKE interpreter does."""
        regex = re.compile(like_pattern_to_regex(pattern), re.DOTALL)

        def naive(p, s):
            if not p:
                return not s
            if p[0] == "%":
                return any(naive(p[1:], s[i:]) for i in range(len(s) + 1))
            if p[0] == "_":
                return bool(s) and naive(p[1:], s[1:])
            return bool(s) and s[0] == p[0] and naive(p[1:], s[1:])

        assert (regex.match(subject) is not None) == naive(pattern, subject)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.text(alphabet=st.sampled_from(list("abcx")), max_size=6),
            min_size=1,
            max_size=40,
        )
    )
    def test_like_prefix_query_matches_startswith(self, names):
        db = Database()
        db.create_table(
            "n", Schema([Column("s", string(10))]), [(n,) for n in names]
        )
        db.analyze()
        result = db.execute("select s from n where s like 'a%'")
        expected = Counter((n,) for n in names if n.startswith("a"))
        assert Counter(result.rows) == expected
