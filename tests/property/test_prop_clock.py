"""Property-based tests: virtual clock invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import VirtualClock
from repro.sim.load import CPU, IO, InterferenceWindow, LoadProfile

costs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.sampled_from([IO, CPU]),
    ),
    max_size=30,
)

windows = st.lists(
    st.builds(
        InterferenceWindow,
        start=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        end=st.floats(min_value=101.0, max_value=500.0, allow_nan=False),
        io_factor=st.floats(min_value=0.25, max_value=8.0, allow_nan=False),
        cpu_factor=st.floats(min_value=0.25, max_value=8.0, allow_nan=False),
    ),
    max_size=3,
)


class TestClockProperties:
    @given(costs)
    def test_time_is_monotone(self, charges):
        clock = VirtualClock()
        last = 0.0
        for cost, resource in charges:
            clock.advance(cost, resource)
            assert clock.now >= last
            last = clock.now

    @given(costs)
    def test_unloaded_time_equals_total_cost(self, charges):
        clock = VirtualClock()
        for cost, resource in charges:
            clock.advance(cost, resource)
        total = sum(c for c, _ in charges)
        assert abs(clock.now - total) < 1e-6 * max(1.0, total)

    @given(costs, windows)
    def test_loaded_time_at_least_unloaded(self, charges, wins):
        """Slowdowns can only stretch elapsed time (factors >= 1)."""
        stretched = [
            InterferenceWindow(
                w.start, w.end, max(1.0, w.io_factor), max(1.0, w.cpu_factor)
            )
            for w in wins
        ]
        clock = VirtualClock(LoadProfile(stretched))
        for cost, resource in charges:
            clock.advance(cost, resource)
        total = sum(c for c, _ in charges)
        assert clock.now >= total - 1e-6

    @given(costs, windows)
    def test_split_advance_equivalent_to_single(self, charges, wins):
        """advance(a); advance(b) must land where advance(a+b) lands."""
        profile = LoadProfile(wins)
        one = VirtualClock(profile)
        two = VirtualClock(profile)
        for cost, resource in charges:
            one.advance(cost, resource)
            two.advance(cost / 2.0, resource)
            two.advance(cost / 2.0, resource)
        assert abs(one.now - two.now) < 1e-6 * max(1.0, one.now)

    @given(
        st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_ticker_count_matches_elapsed(self, interval, total):
        clock = VirtualClock()
        fired = []
        clock.add_ticker(interval, fired.append)
        clock.advance(total, CPU)
        expected = int(total / interval)
        # Firing exactly at the final instant may round either way.
        assert abs(len(fired) - expected) <= 1
        # Fire times are exact multiples of the interval.
        for i, t in enumerate(fired):
            assert abs(t - (i + 1) * interval) < 1e-9
