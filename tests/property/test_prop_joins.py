"""Property-based tests: all join algorithms agree with brute force.

Random small relations are joined with each physical algorithm; every
algorithm must produce exactly the multiset a nested Python loop produces.
This is the core executor-correctness invariant.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Database
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER

rows_left = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
        st.integers(min_value=0, max_value=100),
    ),
    max_size=40,
)
rows_right = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
        st.integers(min_value=0, max_value=100),
    ),
    min_size=1,
    max_size=40,
)


def make_db(left, right, **planner_flags):
    db = Database()
    if planner_flags:
        db.config = db.config.with_planner(**planner_flags)
    db.create_table(
        "l", Schema([Column("k", INTEGER), Column("a", INTEGER)]), left
    )
    db.create_table(
        "r", Schema([Column("k", INTEGER), Column("b", INTEGER)]), right
    )
    db.analyze()
    return db


def expected_equijoin(left, right):
    return Counter(
        (l[1], r[1])
        for l in left
        for r in right
        if l[0] is not None and l[0] == r[0]
    )


SQL = "select l.a, r.b from l, r where l.k = r.k"


class TestJoinAlgorithmsAgree:
    @settings(max_examples=40, deadline=None)
    @given(rows_left, rows_right)
    def test_hash_join_matches_brute_force(self, left, right):
        db = make_db(left, right, enable_mergejoin=False, enable_nestloop=False)
        result = db.execute(SQL)
        assert Counter(result.rows) == expected_equijoin(left, right)

    @settings(max_examples=40, deadline=None)
    @given(rows_left, rows_right)
    def test_merge_join_matches_brute_force(self, left, right):
        db = make_db(left, right, enable_hashjoin=False, enable_nestloop=False)
        result = db.execute(SQL)
        assert Counter(result.rows) == expected_equijoin(left, right)

    @settings(max_examples=40, deadline=None)
    @given(rows_left, rows_right)
    def test_nestloop_matches_brute_force(self, left, right):
        db = make_db(left, right, enable_hashjoin=False, enable_mergejoin=False)
        result = db.execute(SQL)
        assert Counter(result.rows) == expected_equijoin(left, right)

    @settings(max_examples=30, deadline=None)
    @given(rows_left, rows_right)
    def test_inequality_join_matches_brute_force(self, left, right):
        db = make_db(left, right)
        result = db.execute("select l.a, r.b from l, r where l.k <> r.k")
        expected = Counter(
            (l[1], r[1])
            for l in left
            for r in right
            if l[0] is not None and r[0] is not None and l[0] != r[0]
        )
        assert Counter(result.rows) == expected

    @settings(max_examples=30, deadline=None)
    @given(rows_left, rows_right)
    def test_filter_pushdown_preserves_semantics(self, left, right):
        db = make_db(left, right)
        result = db.execute(
            "select l.a, r.b from l, r where l.k = r.k and l.a > 50"
        )
        expected = Counter(
            (l[1], r[1])
            for l in left
            for r in right
            if l[0] is not None and l[0] == r[0] and l[1] > 50
        )
        assert Counter(result.rows) == expected
