"""Property-based tests: histogram and selectivity invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.statistics import ColumnStatistics, Histogram

values = st.lists(
    st.integers(min_value=-10_000, max_value=10_000), min_size=1, max_size=300
)
buckets = st.integers(min_value=1, max_value=40)
probes = st.integers(min_value=-20_000, max_value=20_000)


class TestHistogramProperties:
    @given(values, buckets, probes)
    def test_fraction_below_in_unit_interval(self, vals, nbuckets, probe):
        h = Histogram.from_values(vals, nbuckets)
        frac = h.fraction_below(probe)
        assert 0.0 <= frac <= 1.0

    @given(values, buckets)
    def test_fraction_below_monotone_in_probe(self, vals, nbuckets):
        h = Histogram.from_values(vals, nbuckets)
        probes_sorted = sorted({min(vals) - 1, max(vals) + 1, *vals})
        fracs = [h.fraction_below(p) for p in probes_sorted]
        assert all(b >= a - 1e-12 for a, b in zip(fracs, fracs[1:]))

    @given(values, buckets, probes)
    def test_inclusive_at_least_exclusive(self, vals, nbuckets, probe):
        h = Histogram.from_values(vals, nbuckets)
        assert h.fraction_below(probe, inclusive=True) >= h.fraction_below(probe)

    @given(values, buckets)
    def test_bounds_are_sorted(self, vals, nbuckets):
        h = Histogram.from_values(vals, nbuckets)
        assert h.bounds == sorted(h.bounds)

    @given(values, buckets)
    def test_approximates_true_cdf(self, vals, nbuckets):
        """Fraction-below stays within one bucket of the empirical CDF."""
        h = Histogram.from_values(vals, nbuckets)
        n = len(vals)
        data = sorted(vals)
        for probe in data[:: max(1, n // 10)]:
            true_frac = sum(1 for v in data if v < probe) / n
            estimate = h.fraction_below(probe)
            assert abs(estimate - true_frac) <= 1.5 / h.num_buckets + 2.0 / n


class TestSelectivityProperties:
    @given(values, buckets, probes)
    def test_range_selectivities_partition_unity(self, vals, nbuckets, probe):
        stats = ColumnStatistics(
            name="x",
            num_distinct=len(set(vals)),
            null_fraction=0.0,
            min_value=min(vals),
            max_value=max(vals),
            histogram=Histogram.from_values(vals, nbuckets),
        )
        lt = stats.selectivity_cmp("<", probe)
        ge = stats.selectivity_cmp(">=", probe)
        assert abs((lt + ge) - 1.0) < 1e-9
        assert 0.0 <= lt <= 1.0

    @given(values, probes)
    def test_eq_plus_ne_is_nonnull_fraction(self, vals, probe):
        stats = ColumnStatistics(
            name="x",
            num_distinct=len(set(vals)),
            null_fraction=0.0,
            min_value=min(vals),
            max_value=max(vals),
        )
        eq = stats.selectivity_eq(probe)
        ne = stats.selectivity_cmp("<>", probe)
        assert abs((eq + ne) - 1.0) < 1e-9
