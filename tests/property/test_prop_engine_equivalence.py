"""Property: the fused batch engine is bit-identical to the row engine.

The batch engine (``progress.engine = "batch"``) compiles each plan into
fused per-pipeline loops and ships rows in :class:`Batch` objects — a
pure real-time optimization.  Its contract is *bit identity* with the
reference volcano row engine: the same rows in the same order, the same
ProgressLog (every report field, float-for-float), and the same final
virtual-clock charge totals.  No tolerance anywhere: virtual costs are
computed by the identical expressions in the identical order, so even
float rounding must agree.

This property is checked across every tier-1 workload grid variant
(~40 cells spanning scan/sort/agg/join/self-join/multi-join shapes, four
skew profiles, four selectivity levels, three scales) — the same grid CI
scores the estimator on.  Each engine keeps its own database (identical
build: same scale, skew and seed), restarted before every variant so
each comparison starts from a cold buffer pool and the engines' clock
histories stay pairwise identical.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.workloads import grid

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: Engine -> (dataset_key -> Database); built lazily, shared module-wide.
_DATABASES: dict[str, dict] = {"row": {}, "batch": {}}


def _database(engine: str, variant: grid.Variant):
    cache = _DATABASES[engine]
    db = cache.get(variant.dataset_key)
    if db is None:
        config = SystemConfig().with_progress(engine=engine)
        db = cache[variant.dataset_key] = variant.build_database(config)
    return db


def _run(engine: str, variant: grid.Variant):
    """One monitored run; returns (rows, log, charge-delta-by-resource)."""
    db = _database(engine, variant)
    db.restart()
    before = dict(db.clock.cost_charged)
    handle = db.connect().submit(
        variant.sql, name=f"eq-{variant.name}-{engine}", monitor=True
    )
    result = handle.result()
    delta = {
        res: total - before.get(res, 0.0)
        for res, total in db.clock.cost_charged.items()
    }
    return result, handle.log, delta


def _assert_identical(variant: grid.Variant) -> None:
    row_result, row_log, row_u = _run("row", variant)
    batch_result, batch_log, batch_u = _run("batch", variant)

    # Result stream: same rows, same order, same count.
    assert batch_result.row_count == row_result.row_count
    assert batch_result.rows == row_result.rows

    # Progress history: every report, float-for-float.  ProgressReport
    # and ProgressLog are dataclasses, so == compares all fields.
    assert len(batch_log) == len(row_log)
    for got, want in zip(batch_log, row_log):
        assert got == want
    assert batch_log == row_log

    # Final virtual-clock charges per resource (U accounting).
    assert batch_u == row_u

    # Virtual elapsed time, for good measure (implied by the log).
    assert batch_result.elapsed == row_result.elapsed


@pytest.mark.parametrize("name", grid.TIER1_NAMES)
def test_tier1_variant_bit_identical(name):
    _assert_identical(grid.variants_by_name()[name])


def _run_fresh(variant: grid.Variant, tag: str, **progress):
    """Run on a freshly built database (clock history starts at zero).

    The shared ``_DATABASES`` caches stay pairwise comparable because the
    two engines run the same query sequence; a one-off configuration
    needs a fresh database on *both* sides, or absolute report
    timestamps diverge.
    """
    config = SystemConfig().with_progress(**progress)
    db = grid.build_dataset(*variant.dataset_key, config=config)
    db.restart()
    handle = db.connect().submit(
        variant.sql, name=f"eq-{tag}", monitor=True
    )
    return handle.result(), handle.log


def test_batch_rows_one_degenerates_to_row_transport():
    """batch_rows=1 changes transport granularity, never results."""
    variant = grid.variants_by_name()["xs-uniform-join3-half"]
    tiny_result, tiny_log = _run_fresh(
        variant, "batchrows-1", engine="batch", batch_rows=1
    )
    row_result, row_log = _run_fresh(variant, "batchrows-1-row", engine="row")
    assert tiny_result.rows == row_result.rows
    assert tiny_log == row_log


def test_oversized_batch_rows_still_flushes_at_pulses():
    """A huge batch_rows flushes at PULSE boundaries, results unchanged."""
    variant = grid.variants_by_name()["xs-uniform-scan-half"]
    huge_result, huge_log = _run_fresh(
        variant, "batchrows-huge", engine="batch", batch_rows=1 << 20
    )
    row_result, row_log = _run_fresh(variant, "batchrows-huge-row", engine="row")
    assert huge_result.rows == row_result.rows
    assert huge_log == row_log
