"""Property-based tests: service fairness and shedding invariants.

Random workloads, admission configs and mid-flight disruptions
(suspend / resume / cancel / shed) against one shared database; the
invariants mirror the chaos harness's, plus the tentpole's fairness
claim: weighted tenants converge to their share of total U.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ServiceConfig, SystemConfig
from repro.sched.task import DONE_STATES
from repro.service import ADMISSION_REJECTED
from repro.workloads import queries, tpcr

_DB = tpcr.build_database(
    scale=0.002,
    subset_rows=60,
    config=SystemConfig(work_mem_pages=8, buffer_pool_pages=24),
)

_SQL = {"Q1": queries.Q1, "Q3": queries.Q3, "Q5": queries.Q5}

submissions = st.lists(
    st.tuples(
        st.sampled_from(sorted(_SQL)),
        st.sampled_from(["acme", "globex"]),
        st.one_of(st.none(), st.floats(min_value=2.0, max_value=40.0)),
    ),
    min_size=2,
    max_size=6,
)

admission_cfg = st.tuples(
    st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    st.integers(min_value=0, max_value=8),
    st.booleans(),
)

disruptions = st.tuples(
    st.integers(min_value=1, max_value=30),   # suspend at step
    st.integers(min_value=1, max_value=20),   # resume after N more steps
    st.integers(min_value=0, max_value=40),   # cancel at step (0 = never)
    st.integers(min_value=0, max_value=40),   # shed at step (0 = never)
)


def _drive(service, handles, suspend_at, resume_after, cancel_at, shed_at):
    """Drain the workload with scripted mid-flight disruptions."""

    def active():
        return [
            h.task
            for h in handles
            if h.task is not None and not h.task.done
        ]

    steps = 0
    suspended = None
    while True:
        if service.step() is None:
            if suspended is None:
                break
            # A suspended task can wedge the drain (it may hold the
            # only capacity); lift the block and keep going.
            service.scheduler.resume(suspended)
            suspended = None
            continue
        steps += 1
        live = active()
        if steps == suspend_at and live:
            suspended = live[0]
            service.scheduler.suspend(suspended)
        if suspended is not None and steps == suspend_at + resume_after:
            service.scheduler.resume(suspended)
            suspended = None
        if cancel_at and steps == cancel_at and live:
            service.scheduler.cancel(live[-1])
        if shed_at and steps == shed_at and live:
            service.scheduler.shed(live[0], reason="property disruption")
    return steps


class TestTerminalStateAndMonotonicity:
    @given(work=submissions, cfg=admission_cfg, chaos=disruptions)
    @settings(max_examples=10, deadline=None)
    def test_every_admitted_query_ends_in_exactly_one_terminal_state(
        self, work, cfg, chaos
    ):
        max_inflight, queue_limit, shedding = cfg
        _DB.restart()
        service = _DB.service(
            config=ServiceConfig(
                max_inflight=max_inflight,
                admission_queue_limit=queue_limit,
                shedding=shedding,
                policy_interval=0.5,
                shed_after=2,
            )
        )
        base = _DB.clock.now
        handles = []
        for i, (qname, tenant, deadline_offset) in enumerate(work):
            handles.append(
                service.submit(
                    _SQL[qname],
                    name=f"w{i}",
                    tenant=tenant,
                    keep_rows=False,
                    deadline=(
                        None
                        if deadline_offset is None
                        else base + deadline_offset
                    ),
                )
            )
        _drive(service, handles, *chaos)

        admitted = 0
        for handle in handles:
            if handle.outcome == ADMISSION_REJECTED:
                assert handle.task is None
                assert handle.done
                continue
            if handle.task is None:
                # only a queue-cancelled submission may lack a task
                assert handle.state == "cancelled"
                continue
            admitted += 1
            task = handle.task
            # exactly one terminal state, and the books agree
            assert task.state in DONE_STATES
            if task.indicator is not None:
                assert task.indicator.finalized
                # reported progress is monotone across every disruption
                log = task.log
                if log is not None:
                    done = [r.done_pages for r in log.reports]
                    assert all(
                        b >= a - 1e-9 for a, b in zip(done, done[1:])
                    )
        # the retire hook settled every admitted query exactly once
        terminal_total = sum(
            service.counters[k]
            for k in ("finished", "failed", "cancelled", "timed_out", "shed")
        )
        assert terminal_total >= admitted
        assert service.inflight == 0
        for tenant in service.tenants:
            assert tenant.inflight == 0
            assert tenant.inflight_cost_pages == 0.0
        # cooperative unwind on every path: no leaked shared state
        assert _DB.buffer_pool.pinned_count == 0
        assert _DB.disk.temp_file_count() == 0


class TestWeightedFairness:
    @given(weight=st.floats(min_value=1.5, max_value=8.0))
    @settings(max_examples=8, deadline=None)
    def test_tenants_converge_to_their_u_share(self, weight):
        _DB.restart()
        service = _DB.service(policy="weighted_fair")
        service.register_tenant("gold", weight=weight)
        service.register_tenant("bronze", weight=1.0)
        g = service.submit(
            queries.Q2, name="g", tenant="gold", keep_rows=False
        )
        b = service.submit(
            queries.Q2, name="b", tenant="bronze", keep_rows=False
        )
        # Identical backlogged queries: the heavier tenant finishes
        # first, having been granted ~weight x the other's U.
        while not g.done and not b.done:
            assert service.step() is not None
        assert g.done and not b.done
        gold = service.tenants.get("gold")
        bronze = service.tenants.get("bronze")
        assert bronze.consumed_pages > 0
        ratio = gold.consumed_pages / bronze.consumed_pages
        assert ratio == pytest.approx(weight, rel=0.35)
