"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

# The plan/segment invariant gate (repro.analysis.gate) is warn-only in
# production but strict under test: any plan the suite executes that
# violates a structural invariant fails loudly instead of skewing results.
os.environ.setdefault("REPRO_VERIFY", "strict")

from repro.config import SystemConfig
from repro.database import Database
from repro.storage.schema import Column, Schema
from repro.storage.types import FLOAT, INTEGER, string
from repro.workloads import queries, tpcr


@pytest.fixture
def config() -> SystemConfig:
    return SystemConfig()


@pytest.fixture
def small_db() -> Database:
    """A tiny two-table database for executor/planner unit tests."""
    db = Database()
    db.create_table(
        "t1",
        Schema([Column("a", INTEGER), Column("b", INTEGER), Column("s", string(20))]),
        [(i, i % 10, f"row{i}") for i in range(100)],
    )
    db.create_table(
        "t2",
        Schema([Column("a", INTEGER), Column("v", FLOAT)]),
        [(i % 50, float(i)) for i in range(200)],
    )
    db.analyze()
    return db


@pytest.fixture(scope="session")
def tiny_tpcr() -> Database:
    """A session-shared tiny TPC-R database (read-only tests)."""
    return tpcr.build_database(scale=0.002, subset_rows=60)


@pytest.fixture(scope="session")
def tpcr_queries() -> dict[str, str]:
    return queries.PAPER_QUERIES
