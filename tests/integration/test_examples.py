"""Integration: every shipped example script runs to completion.

Each example is a documented entry point (README points users at them),
so a refactor that breaks one is a release bug even when the library
tests stay green.  They run as subprocesses, the way users run them.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_six_examples_shipped():
    assert len(EXAMPLES) == 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    env = {"PYTHONPATH": str(REPO_ROOT / "src")}
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"


def test_dashboard_narrates_from_the_trace():
    """The dashboard consumes TraceBus events, not report callbacks."""
    source = (REPO_ROOT / "examples" / "progress_dashboard.py").read_text()
    assert "TraceBus" in source
    assert "subscribe" in source
    assert "on_report" not in source
