"""Integration: a traced run explains exactly what the indicator showed.

The audit replays ``report_emitted`` events; the ProgressLog stores the
reports the indicator actually emitted.  They must agree row for row —
the trace is a faithful transcript, not a parallel implementation.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.obs import TraceBus, audit_events, chrome_trace, span_coverage
from repro.workloads import queries, tpcr

SCALE = 0.003


@pytest.fixture(scope="module")
def traced_q1():
    db = tpcr.build_database(scale=SCALE, config=SystemConfig(work_mem_pages=24))
    trace = TraceBus()
    monitored = db.execute_with_progress(queries.Q1, trace=trace)
    return monitored, trace


class TestAuditMatchesProgressLog:
    def test_one_audit_row_per_report(self, traced_q1):
        monitored, trace = traced_q1
        summary = audit_events(trace.events)
        assert len(summary.rows) == len(monitored.log)

    def test_rows_reproduce_the_log(self, traced_q1):
        monitored, trace = traced_q1
        summary = audit_events(trace.events)
        for row, report in zip(summary.rows, monitored.log.reports):
            assert row.elapsed == report.elapsed
            assert row.percent_done == pytest.approx(100.0 * report.fraction_done)
            assert row.est_cost_pages == report.est_cost_pages
            assert row.speed_pages_per_sec == report.speed_pages_per_sec
            assert row.est_remaining == report.est_remaining_seconds

    def test_ground_truth_is_the_run_itself(self, traced_q1):
        monitored, trace = traced_q1
        summary = audit_events(trace.events)
        assert summary.total_elapsed == pytest.approx(
            monitored.log.total_elapsed
        )
        assert summary.actual_cost_pages == pytest.approx(
            monitored.log.final().est_cost_pages
        )
        # Final row: the query is done, so zero remaining and zero error.
        assert summary.rows[-1].actual_remaining == 0.0

    def test_unloaded_q1_estimates_are_accurate(self, traced_q1):
        """Figure 6's shape: on an unloaded run the error stays small."""
        _monitored, trace = traced_q1
        summary = audit_events(trace.events)
        assert summary.mean_abs_error is not None
        assert summary.mean_abs_error < 0.05 * summary.total_elapsed


class TestTraceShape:
    def test_chrome_trace_covers_whole_run(self, traced_q1):
        _monitored, trace = traced_q1
        assert span_coverage(chrome_trace(trace.events)) == pytest.approx(1.0)

    def test_timestamps_monotonic_end_to_end(self, traced_q1):
        _monitored, trace = traced_q1
        times = [e.t for e in trace.events]
        assert times == sorted(times)

    def test_trace_bounded_by_pages_not_tuples(self, traced_q1):
        """Per-page events only: the stream must stay far below row count."""
        monitored, trace = traced_q1
        assert len(trace.events) < 20 * monitored.log.final().est_cost_pages
