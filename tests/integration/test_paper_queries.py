"""Integration: the paper's five queries produce correct results."""

import pytest

from repro.config import SystemConfig
from repro.workloads import correlated, queries, tpcr


@pytest.fixture(scope="module")
def db():
    return tpcr.build_database(scale=0.001, subset_rows=40)


def rows_of(db_, table):
    return list(db_.catalog.get_table(table).heap.iter_rows())


class TestQ1:
    def test_returns_every_lineitem(self, db):
        result = db.execute(queries.Q1)
        assert result.row_count == db.catalog.get_table("lineitem").num_tuples

    def test_columns_complete(self, db):
        result = db.execute(queries.Q1, max_rows=1)
        assert len(result.rows[0]) == 10


class TestQ2:
    def test_matches_brute_force(self, db):
        result = db.execute(queries.Q2, keep_rows=True)
        customers = {c[0] for c in rows_of(db, "customer")}
        orders = {o[0]: o for o in rows_of(db, "orders")}
        expected = sum(
            1
            for l in rows_of(db, "lineitem")
            if l[0] in orders and orders[l[0]][1] in customers and abs(l[1]) > 0
        )
        assert result.row_count == expected

    def test_every_lineitem_joins(self, db):
        # Key/FK integrity: each lineitem matches exactly one order and
        # each order exactly one customer, so |Q2| = |lineitem|.
        result = db.execute(queries.Q2, keep_rows=False)
        assert result.row_count == db.catalog.get_table("lineitem").num_tuples

    def test_multibatch_plan_same_answer(self):
        small = tpcr.build_database(
            scale=0.001, subset_rows=40, config=SystemConfig(work_mem_pages=1)
        )
        big = tpcr.build_database(scale=0.001, subset_rows=40)
        a = small.execute(queries.Q2, keep_rows=True)
        b = big.execute(queries.Q2, keep_rows=True)
        assert sorted(a.rows) == sorted(b.rows)


class TestQ3:
    def test_matches_brute_force_on_correlated_data(self):
        db3 = correlated.build_database(scale=0.001, subset_rows=40)
        result = db3.execute(queries.Q3, keep_rows=False)
        customers = {
            c[0] for c in rows_of(db3, "customer") if c[3] < 10
        }
        orders = rows_of(db3, "orders")
        orderkeys = {o[0] for o in orders}
        expected = sum(
            1 for o in orders if o[1] in customers and o[0] in orderkeys
        )
        assert result.row_count == expected

    def test_heavy_customers_dominate(self):
        # nationkey<10 customers have 20 orders each in the correlated set.
        db3 = correlated.build_database(scale=0.001, subset_rows=40)
        result = db3.execute(queries.Q3, keep_rows=False)
        heavy = sum(1 for c in rows_of(db3, "customer") if c[3] < 10)
        assert result.row_count == heavy * 20


class TestQ4:
    def test_matches_q2_row_count(self, db):
        # The extra predicate absolute(o.totalprice) > 0 is always true.
        q2 = db.execute(queries.Q2, keep_rows=False)
        q4 = db.execute(queries.Q4, keep_rows=False)
        assert q4.row_count == q2.row_count

    def test_wider_output(self, db):
        result = db.execute(queries.Q4, max_rows=1)
        assert len(result.rows[0]) == 7


class TestQ5:
    def test_cross_product_minus_equal_keys(self, db):
        result = db.execute(queries.Q5, keep_rows=False)
        n1 = db.catalog.get_table("customer_subset1").num_tuples
        n2 = db.catalog.get_table("customer_subset2").num_tuples
        # Subset key ranges are disjoint, so no pair is ever equal.
        assert result.row_count == n1 * n2

    def test_star_output_width(self, db):
        result = db.execute(queries.Q5, max_rows=1)
        assert len(result.rows[0]) == 14


class TestMonitoredEquivalence:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4", "Q5"])
    def test_indicator_never_changes_answers(self, name):
        sql = queries.PAPER_QUERIES[name]
        build = (
            correlated.build_database if name == "Q3" else tpcr.build_database
        )
        plain_db = build(scale=0.001, subset_rows=30)
        monitored_db = build(scale=0.001, subset_rows=30)
        plain = plain_db.execute(sql, keep_rows=True)
        monitored = monitored_db.execute_with_progress(sql, keep_rows=True)
        assert sorted(plain.rows) == sorted(monitored.result.rows)
