"""Integration: per-query progress under real multi-query concurrency.

The ISSUE's acceptance scenario: 16 concurrent monitored queries on one
Database complete interleaved (overlapping segment spans in the Chrome
trace export), each reaching 100%, with per-query estimator accuracy
within 2x of the single-query baseline.  Contention here is *emergent* —
no :class:`~repro.sim.load.InterferenceWindow` is installed anywhere in
this module.
"""

from __future__ import annotations

import pytest

from repro.bench import metrics
from repro.obs.exporters import chrome_trace_concurrent, overlapping_query_spans
from repro.workloads import queries, tpcr

SCALE = 0.002
#: Submission rotation for the 16-query mix.
MIX = ("Q1", "Q2", "Q4")


def _db():
    return tpcr.build_database(scale=SCALE, subset_rows=60)


def _normalized_error(log, elapsed: float) -> float:
    actual = [(t, max(0.0, elapsed - t)) for t, _ in log.remaining_series()]
    return metrics.mean_abs_error(log.remaining_series(), actual) / elapsed


@pytest.fixture(scope="module")
def sixteen_tasks():
    """One Database, one session, 16 traced monitored queries, run out."""
    session = _db().connect()
    for i in range(16):
        qname = MIX[i % len(MIX)]
        session.submit(
            queries.PAPER_QUERIES[qname],
            name=f"{qname.lower()}-{i + 1}",
            keep_rows=False,
            trace=True,
        )
    handles = session.run()
    return [h.task for h in handles]


@pytest.fixture(scope="module")
def solo_baselines():
    """Each mix query run alone through the same scheduler path."""
    baselines = {}
    for qname in MIX:
        session = _db().connect()
        handle = session.submit(
            queries.PAPER_QUERIES[qname], name=qname, keep_rows=False
        )
        handle.result()
        baselines[qname] = _normalized_error(
            handle.log, handle.task.result.elapsed
        )
    return baselines


class TestSixteenConcurrentQueries:
    def test_all_sixteen_finish_at_100_percent(self, sixteen_tasks):
        assert len(sixteen_tasks) == 16
        for task in sixteen_tasks:
            assert task.state == "finished", f"{task.name}: {task.state}"
            assert task.log.final().fraction_done == pytest.approx(1.0)

    def test_interleaving_shows_in_chrome_trace_overlap(self, sixteen_tasks):
        doc = chrome_trace_concurrent(
            {t.name: list(t.trace_bus.events) for t in sixteen_tasks}
        )
        # 16 queries submitted together: every pair's query spans overlap.
        assert overlapping_query_spans(doc) == 16 * 15 // 2

    def test_every_indicator_is_monotone(self, sixteen_tasks):
        for task in sixteen_tasks:
            fractions = [r.fraction_done for r in task.log.reports]
            assert fractions == sorted(fractions), (
                f"{task.name}: fraction_done regressed"
            )
            done = [r.done_pages for r in task.log.reports]
            assert done == sorted(done), f"{task.name}: done_pages regressed"

    def test_estimator_accuracy_within_2x_of_solo(
        self, sixteen_tasks, solo_baselines
    ):
        # Floor: a perfectly predictable solo scan has ~0 error, which
        # would make any real contention "worse than 2x"; the floor is
        # the solo error magnitude of the join queries.
        floor = 0.125
        for task in sixteen_tasks:
            qname = task.name.split("-")[0].upper()
            err = _normalized_error(task.log, task.result.elapsed)
            allowed = 2.0 * max(solo_baselines[qname], floor)
            assert err <= allowed, (
                f"{task.name}: |err|/elapsed {err:.3f} > {allowed:.3f} "
                f"(solo {solo_baselines[qname]:.3f})"
            )

    def test_slices_interleave_rather_than_serialize(self, sixteen_tasks):
        # No task finished before every task had at least one slice.
        first_finish = min(t.finished_at for t in sixteen_tasks)
        for task in sixteen_tasks:
            assert task.slices[0].started_at <= first_finish


class TestEmergentContention:
    """Q1 + Q5 on one database: the speed dip without an InterferenceWindow."""

    def test_contention_slows_q1_without_interference_window(self):
        # Larger customer subsets so Q5's NL join is comparable work to
        # the Q1 scan — a fair fight over the shared clock.
        def _db():
            return tpcr.build_database(scale=SCALE, subset_rows=200)

        solo_session = _db().connect()
        solo = solo_session.submit(queries.Q1, name="Q1", keep_rows=False)
        solo.result()

        db = _db()
        assert db.clock.load.windows == ()  # no synthetic interference
        session = db.connect()
        q1 = session.submit(queries.Q1, name="Q1", keep_rows=False)
        session.submit(queries.Q5, name="Q5", keep_rows=False)
        session.run()

        # Q1 takes longer wall-to-wall because Q5 held slices in between.
        assert q1.task.result.elapsed > 1.2 * solo.task.result.elapsed
        # Its observed speed dips below the solo steady-state speed.
        solo_speeds = [
            v for _, v in solo.log.speed_series() if v is not None
        ]
        loaded_speeds = [
            v for _, v in q1.log.speed_series() if v is not None
        ]
        assert min(loaded_speeds) < 0.8 * min(solo_speeds)
        # And the indicator still finishes at 100%.
        assert q1.log.final().fraction_done == pytest.approx(1.0)

    def test_speed_recovers_after_the_peer_finishes(self):
        db = _db()
        session = db.connect()
        long_q = session.submit(queries.Q2, name="long", keep_rows=False)
        short_q = session.submit(queries.Q1, name="short", keep_rows=False)
        session.run()

        short_end = short_q.task.finished_at
        during = [
            v
            for t, v in long_q.log.speed_series()
            if v is not None and t <= short_end
        ]
        after = [
            v
            for t, v in long_q.log.speed_series()
            if v is not None and t > short_end
        ]
        if during and after:
            # Once the short query is gone, the long query's observed
            # speed improves — the contention was the peer, not a window.
            assert max(after) > max(during)
