"""Integration: the full SQL surface on the TPC-R data set.

Exercises every extension together — joins, aggregation, HAVING, DISTINCT,
BETWEEN/IN/LIKE, IN-subqueries, ORDER BY, LIMIT — with progress monitoring
attached, verifying results against Python recomputation.
"""

from collections import defaultdict

import pytest

from repro.workloads import tpcr


@pytest.fixture(scope="module")
def db():
    return tpcr.build_database(scale=0.002, subset_rows=40)


def customer_rows(db):
    return list(db.catalog.get_table("customer").heap.iter_rows())


def orders_rows(db):
    return list(db.catalog.get_table("orders").heap.iter_rows())


class TestAnalyticsReport:
    def test_revenue_by_nation_report(self, db):
        sql = """
        select c.nationkey, count(*), sum(o.totalprice)
        from customer c, orders o
        where c.custkey = o.custkey and c.nationkey between 0 and 9
        group by c.nationkey
        having count(*) > 5
        order by c.nationkey
        """
        monitored = db.execute_with_progress(sql, keep_rows=True)

        nation_of = {c[0]: c[3] for c in customer_rows(db)}
        agg = defaultdict(lambda: [0, 0.0])
        for o in orders_rows(db):
            nation = nation_of[o[1]]
            if 0 <= nation <= 9:
                agg[nation][0] += 1
                agg[nation][1] += o[3]
        expected = sorted(
            (n, c, t) for n, (c, t) in agg.items() if c > 5
        )
        got = monitored.result.rows
        assert [(r[0], r[1]) for r in got] == [(e[0], e[1]) for e in expected]
        for r, e in zip(got, expected):
            assert r[2] == pytest.approx(e[2])

    def test_distinct_market_segments_of_big_spenders(self, db):
        sql = """
        select distinct c.mktsegment
        from customer c
        where c.custkey in (
            select custkey from orders where totalprice > 450000
        )
        order by c.mktsegment
        """
        result = db.execute(sql)
        spenders = {o[1] for o in orders_rows(db) if o[3] > 450000}
        expected = sorted({c[6] for c in customer_rows(db) if c[0] in spenders})
        assert [r[0] for r in result.rows] == expected

    def test_like_and_in_list_combined(self, db):
        sql = """
        select count(*)
        from customer
        where name like 'Customer#0000000%' and nationkey in (1, 2, 3)
        """
        result = db.execute(sql)
        expected = sum(
            1
            for c in customer_rows(db)
            if c[1].startswith("Customer#0000000") and c[3] in (1, 2, 3)
        )
        assert result.rows == [(expected,)]

    def test_top_k_over_join(self, db):
        sql = """
        select c.name, o.totalprice
        from customer c, orders o
        where c.custkey = o.custkey
        order by o.totalprice desc
        limit 5
        """
        result = db.execute(sql)
        top = sorted((o[3] for o in orders_rows(db)), reverse=True)[:5]
        assert [r[1] for r in result.rows] == top

    def test_monitored_report_behaves(self, db):
        sql = """
        select c.nationkey, count(*), avg(o.totalprice)
        from customer c, orders o
        where c.custkey = o.custkey
        group by c.nationkey
        order by c.nationkey
        """
        db.restart()
        monitored = db.execute_with_progress(sql, keep_rows=True)
        log = monitored.log
        assert log.final().percent_done == pytest.approx(100.0)
        percents = [r.percent_done for r in log]
        assert all(b >= a - 1e-9 for a, b in zip(percents, percents[1:]))
        assert monitored.result.row_count == len(
            {c[3] for c in customer_rows(db)}
        )
