"""Integration: the paper's Figure 3 plan, segment by segment.

Figure 3's example plan: π(σ(A)) is hashed into partitions PA (S1), σ(B)
into PB (S2); a hash join consumes PA/PB and sorts its result into runs
RAB (S3); σ(C) is sorted into runs RC (S4); a sort-merge join of RAB and
RC produces the final output (S5).  Dominant inputs: A, B, PB, C, and
{RAB, RC}.

The optimizer would not normally mix join algorithms this way, so the
plan is built by hand from physical nodes — exactly what Figure 3 depicts
— then segmented and executed, verifying both the structure and the
answer.
"""

import pytest

from repro.core.segments import build_segments
from repro.database import Database
from repro.executor.base import ExecContext
from repro.executor.runtime import run_query
from repro.expr.bound import ColumnExpr, ComparisonExpr, LiteralExpr
from repro.planner.optimizer import PlannedQuery
from repro.planner.cost import Cost
from repro.planner.physical import (
    HashJoinNode,
    MergeJoinNode,
    PlanColumn,
    ProjectNode,
    SeqScanNode,
    SortNode,
)
from repro.sql.binder import BoundQuery, BoundTable
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER


@pytest.fixture(scope="module")
def setup():
    db = Database()
    # A(k, v), B(k, w), C(j, u): A joins B on k (hash), AB joins C on v=j
    # (sort-merge).
    db.create_table(
        "a", Schema([Column("k", INTEGER), Column("v", INTEGER)]),
        [(i % 40, i % 25) for i in range(200)],
    )
    db.create_table(
        "b", Schema([Column("k", INTEGER), Column("w", INTEGER)]),
        [(i % 40, i) for i in range(300)],
    )
    db.create_table(
        "c", Schema([Column("j", INTEGER), Column("u", INTEGER)]),
        [(i % 25, i * 3) for i in range(150)],
    )
    db.analyze()

    def col(t, i, name):
        return PlanColumn((t, i), name, INTEGER, 4.0)

    # S1 feed: π(σ(A)) — filter a.v < 20, keep both columns.
    a_table = db.catalog.get_table("a")
    a_filter = ComparisonExpr(
        "<", ColumnExpr(0, 1, "a.v", INTEGER), LiteralExpr(20, INTEGER)
    )
    scan_a = SeqScanNode(
        a_table, 0, [a_filter],
        [col(0, 0, "a.k"), col(0, 1, "a.v")],
        est_rows=160.0, est_base_rows=200.0,
    )
    # S2 feed: σ(B) (no-op filter keeps the shape of Figure 3).
    b_table = db.catalog.get_table("b")
    scan_b = SeqScanNode(
        b_table, 1, [],
        [col(1, 0, "b.k"), col(1, 1, "b.w")],
        est_rows=300.0, est_base_rows=300.0,
    )
    # Multi-batch hash join A x B => segments S1 (PA), S2 (PB), S3 opens.
    join_ab = HashJoinNode(
        build=scan_a, probe=scan_b,
        build_keys=[(0, 0)], probe_keys=[(1, 0)],
        extra_filters=[], num_batches=3,
        columns=[col(0, 0, "a.k"), col(0, 1, "a.v"), col(1, 1, "b.w")],
        est_rows=1200.0,
    )
    # S3's tail: sort AB by a.v into runs RAB.
    sort_ab = SortNode(
        join_ab, [((0, 1), True)], list(join_ab.columns), join_ab.est_rows
    )
    # S4: σ(C) sorted into runs RC.
    c_table = db.catalog.get_table("c")
    scan_c = SeqScanNode(
        c_table, 2, [],
        [col(2, 0, "c.j"), col(2, 1, "c.u")],
        est_rows=150.0, est_base_rows=150.0,
    )
    sort_c = SortNode(
        scan_c, [((2, 0), True)], list(scan_c.columns), scan_c.est_rows
    )
    # S5: sort-merge join RAB x RC on a.v = c.j, then the final projection.
    merge = MergeJoinNode(
        sort_ab, sort_c, (0, 1), (2, 0), [],
        columns=[col(0, 0, "a.k"), col(1, 1, "b.w"), col(2, 1, "c.u")],
        est_rows=7000.0,
    )
    project = ProjectNode(
        merge,
        [
            ColumnExpr(0, 0, "a.k", INTEGER),
            ColumnExpr(1, 1, "b.w", INTEGER),
            ColumnExpr(2, 1, "c.u", INTEGER),
        ],
        ["k", "w", "u"],
        merge.est_rows,
        36.0,
    )
    bound = BoundQuery(
        tables=[
            BoundTable(0, a_table, "a"),
            BoundTable(1, b_table, "b"),
            BoundTable(2, c_table, "c"),
        ],
        output=[
            (ColumnExpr(0, 0, "a.k", INTEGER), "k"),
            (ColumnExpr(1, 1, "b.w", INTEGER), "w"),
            (ColumnExpr(2, 1, "c.u", INTEGER), "u"),
        ],
        conjuncts=[],
    )
    planned = PlannedQuery(
        root=project, query=bound, config=db.config, search_cost=Cost.zero()
    )
    specs = build_segments(planned.root)
    return db, planned, specs


class TestFigure3Segments:
    def test_five_segments(self, setup):
        _, _, specs = setup
        assert len(specs) == 5

    def test_s1_partitions_a(self, setup):
        _, _, specs = setup
        s1 = specs[0]
        assert s1.inputs[0].label == "a"
        assert s1.inputs[0].dominant
        assert "partition build" in s1.label

    def test_s2_partitions_b(self, setup):
        _, _, specs = setup
        s2 = specs[1]
        assert s2.inputs[0].label == "b"
        assert s2.inputs[0].dominant

    def test_s3_joins_partitions_and_forms_runs(self, setup):
        # S3's inputs are PA and PB; PB (the probe partitions) dominates;
        # its output is the sorted runs RAB.
        _, _, specs = setup
        s3 = specs[2]
        labels = [i.label for i in s3.inputs]
        assert any("PA" in label for label in labels)
        assert any("PB" in label for label in labels)
        dominants = [i for i in s3.inputs if i.dominant]
        assert len(dominants) == 1
        assert "PB" in dominants[0].label
        assert "sort runs" in s3.label

    def test_s4_sorts_c(self, setup):
        _, _, specs = setup
        s4 = specs[3]
        assert s4.inputs[0].label == "c"
        assert "sort runs" in s4.label

    def test_s5_merges_with_two_dominant_inputs(self, setup):
        _, _, specs = setup
        s5 = specs[4]
        assert s5.final
        assert len(s5.inputs) == 2
        assert all(i.dominant for i in s5.inputs)
        assert {i.child_segment for i in s5.inputs} == {2, 3}


class TestFigure3Execution:
    def test_hand_built_plan_computes_the_join(self, setup):
        db, planned, _specs = setup
        ctx = ExecContext(db.clock, db.disk, db.buffer_pool, db.config)
        result = run_query(planned, ctx, keep_rows=True)

        a_rows = [r for r in db.catalog.get_table("a").heap.iter_rows() if r[1] < 20]
        b_rows = list(db.catalog.get_table("b").heap.iter_rows())
        c_rows = list(db.catalog.get_table("c").heap.iter_rows())
        expected = sorted(
            (a[0], b[1], c[1])
            for a in a_rows
            for b in b_rows
            if a[0] == b[0]
            for c in c_rows
            if a[1] == c[0]
        )
        assert sorted(result.rows) == expected
