"""Integration: the figure shapes are not artifacts of one scale factor.

The calibrated defaults target scale 0.01; this re-checks the Q2 cost
signature (Figure 9) and the Q5 tracking behaviour (Figure 19) at a
different scale and memory budget, guarding against overfitting the
reproduction to a single configuration.
"""

import pytest

from repro.bench import metrics, run_experiment
from repro.config import SystemConfig
from repro.workloads import queries, tpcr

SCALE = 0.02
CFG = SystemConfig(work_mem_pages=48)


@pytest.fixture(scope="module")
def q2():
    db = tpcr.build_database(scale=SCALE, config=CFG)
    return run_experiment("Q2@0.02", db, queries.Q2)


class TestQ2SignatureAtOtherScale:
    def test_initial_underestimate(self, q2):
        assert q2.estimated_cost_series()[0][1] < 0.85 * q2.exact_cost_pages

    def test_monotone_ramp_to_exact(self, q2):
        series = q2.estimated_cost_series()
        assert metrics.is_nondecreasing(series, slack=1.0)
        converged = metrics.convergence_time(series, q2.exact_cost_pages, 0.02)
        assert converged is not None
        assert converged < 0.95 * q2.total_elapsed

    def test_indicator_beats_optimizer(self, q2):
        ind = metrics.mean_abs_error(
            q2.remaining_series(), q2.actual_remaining_series()
        )
        opt = metrics.mean_abs_error(
            q2.optimizer_remaining_series(), q2.actual_remaining_series()
        )
        assert ind < 0.6 * opt

    def test_multibatch_structure_preserved(self, q2):
        assert q2.num_segments == 4


class TestQ5TrackingAtOtherScale:
    def test_remaining_tracks_actual(self):
        db = tpcr.build_database(scale=SCALE, subset_rows=500, config=CFG)
        q5 = run_experiment("Q5@0.02", db, queries.Q5)
        act = dict(q5.actual_remaining_series())
        checked = 0
        for t, v in q5.remaining_series():
            if v is None or t < 20.0:
                continue
            checked += 1
            assert abs(v - act[t]) <= 0.15 * q5.total_elapsed + 5.0
        assert checked >= 3
