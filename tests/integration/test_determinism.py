"""Integration: the entire simulation is deterministic.

Reproducibility claim: identical configuration and seed produce
bit-identical progress histories — virtual time has no hidden
nondeterminism (no wall clock, no unordered iteration affecting results).
"""

import pytest

from repro.config import SystemConfig
from repro.workloads import queries, tpcr


def run_once(sql):
    db = tpcr.build_database(
        scale=0.002, subset_rows=40, config=SystemConfig(work_mem_pages=8)
    )
    monitored = db.execute_with_progress(sql, keep_rows=True)
    return monitored


class TestDeterminism:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q5"])
    def test_identical_progress_histories(self, name):
        sql = queries.PAPER_QUERIES[name]
        a = run_once(sql)
        b = run_once(sql)
        assert a.result.elapsed == b.result.elapsed
        assert a.log.to_csv() == b.log.to_csv()

    def test_identical_results(self):
        a = run_once(queries.Q2)
        b = run_once(queries.Q2)
        assert a.result.rows == b.result.rows

    def test_identical_plans(self):
        db1 = tpcr.build_database(scale=0.002, subset_rows=40)
        db2 = tpcr.build_database(scale=0.002, subset_rows=40)
        assert db1.explain(queries.Q2) == db2.explain(queries.Q2)
