"""Integration: the chaos harness over many seeded fault schedules.

The PR's acceptance bar: at least 50 seeded chaos runs (query executions
under injected faults) with zero invariant violations — every query in
exactly one terminal state, progress monotone, pins released, temp files
gone, finished results bit-identical to fault-free baselines.
"""

from __future__ import annotations

import pytest

from repro.fault.chaos import CI_SEEDS, ChaosHarness, plan_for_seed

#: 11 seeds x 5 queries = 55 fault-injected query runs.
SEEDS = list(range(1, 12))


@pytest.fixture(scope="module")
def harness() -> ChaosHarness:
    return ChaosHarness()


class TestChaosSuite:
    def test_fifty_plus_runs_zero_violations(self, harness):
        results = harness.run_suite(SEEDS)
        runs = sum(len(r.outcomes) for r in results)
        assert runs >= 50
        violations = [v for r in results for v in r.violations]
        assert violations == [], "\n".join(
            r.summary() for r in results if not r.ok
        )

    def test_sweep_exercises_every_recovery_path(self, harness):
        """The seed range must hit retries, give-ups, fatal spills,
        timeouts, cancels and degraded indicators — otherwise the zero
        violations above would be vacuous."""
        results = harness.run_suite(SEEDS)
        states = {o.state for r in results for o in r.outcomes}
        assert states >= {"finished", "failed", "cancelled", "timed_out"}
        assert any(r.counters.get("io_retries", 0) > 0 for r in results)
        assert any(r.counters.get("io_gave_up", 0) > 0 for r in results)
        assert any(r.counters.get("spill_exhausted", 0) > 0 for r in results)
        assert any(
            o.degraded > 0 for r in results for o in r.outcomes
        )

    def test_chaos_replays_deterministically(self, harness):
        a = harness.run_seed(CI_SEEDS[0])
        b = harness.run_seed(CI_SEEDS[0])
        assert [o.state for o in a.outcomes] == [o.state for o in b.outcomes]
        assert a.counters == b.counters
        assert a.violations == b.violations == []

    def test_plan_for_seed_is_pure(self):
        assert plan_for_seed(123) == plan_for_seed(123)
        assert plan_for_seed(123) != plan_for_seed(124)

    def test_ci_seeds_are_clean(self, harness):
        for seed in CI_SEEDS:
            result = harness.run_seed(seed)
            assert result.ok, result.summary()
