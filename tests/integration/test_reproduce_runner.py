"""Integration: the one-shot reproduction runner covers every figure."""

import pytest

from repro.__main__ import main
from repro.bench.reproduce import render_summary, run_all
from repro.config import SystemConfig


@pytest.fixture(scope="module")
def rows():
    return run_all(scale=0.002, config=SystemConfig(work_mem_pages=8))


class TestRunAll:
    def test_all_seven_experiments_run(self, rows):
        names = [r.experiment for r in rows]
        assert names == [
            "Q1 unloaded",
            "Q2 unloaded",
            "Q2 I/O interference",
            "Q3 correlated",
            "Q4 two errors",
            "Q5 unloaded",
            "Q5 CPU interference",
        ]

    def test_every_figure_covered(self, rows):
        figures = " ".join(r.figures for r in rows)
        for fig in ("4-7", "9-12", "13-16", "17", "18", "19", "20"):
            assert fig in figures

    def test_indicator_beats_optimizer_everywhere(self, rows):
        # The paper's headline: on every experiment, the refined
        # indicator's remaining-time error is below the baseline's.
        for row in rows:
            ind, opt = row.indicator_error(), row.optimizer_error()
            assert ind is not None and opt is not None
            # Strictly better wherever the baseline is meaningfully wrong;
            # on very short runs both can round to ~zero (a tie).
            assert ind <= opt, row.experiment
            if opt > 1.0:
                assert ind < opt, row.experiment

    def test_interference_runs_are_stretched(self, rows):
        by_name = {r.experiment: r.result for r in rows}
        assert (
            by_name["Q2 I/O interference"].total_elapsed
            > 1.2 * by_name["Q2 unloaded"].total_elapsed
        )
        assert (
            by_name["Q5 CPU interference"].total_elapsed
            > 1.2 * by_name["Q5 unloaded"].total_elapsed
        )

    def test_cost_estimates_converge(self, rows):
        for row in rows:
            assert row.cost_convergence() is not None, row.experiment

    def test_summary_renders_every_row(self, rows):
        text = render_summary(rows, scale=0.002)
        for row in rows:
            assert row.experiment in text
        assert "err ind" in text


class TestCliReproduce:
    def test_cli_subcommand(self, capsys):
        code = main(["reproduce", "--scale", "0.001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Reproduction summary" in out
        assert "Q5 CPU interference" in out
