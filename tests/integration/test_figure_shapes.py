"""Integration: the reproduced series match the paper's figure shapes.

One test class per experiment of Section 5.  We assert *shapes* — which
estimate is wrong, when learning happens, who wins — not absolute seconds
(our substrate is a simulator, not the authors' 600 MHz laptop).  Each
class documents the paper claims it checks.
"""

import pytest

from repro.bench import metrics, run_experiment
from repro.config import SystemConfig
from repro.core.baseline import closer_to_actual
from repro.sim.load import LoadProfile
from repro.workloads import correlated, queries, tpcr

SCALE = 0.01
# work_mem small enough that both Q2's and Q4's second hash joins spill,
# reproducing the multi-segment structure of the paper's runs.
CFG = SystemConfig(work_mem_pages=24)


@pytest.fixture(scope="module")
def q1():
    db = tpcr.build_database(scale=SCALE, config=CFG)
    return run_experiment("Q1", db, queries.Q1)


@pytest.fixture(scope="module")
def q2():
    db = tpcr.build_database(scale=SCALE, config=CFG)
    return run_experiment("Q2", db, queries.Q2)


@pytest.fixture(scope="module")
def q2_io():
    db = tpcr.build_database(scale=SCALE, config=CFG)
    return run_experiment(
        "Q2-io", db, queries.Q2, load=LoadProfile.file_copy(120.0, 400.0, 3.0)
    )


@pytest.fixture(scope="module")
def q5():
    db = tpcr.build_database(scale=SCALE, config=CFG)
    return run_experiment("Q5", db, queries.Q5)


@pytest.fixture(scope="module")
def q5_cpu():
    db = tpcr.build_database(scale=SCALE, config=CFG)
    return run_experiment(
        "Q5-cpu", db, queries.Q5, load=LoadProfile.cpu_hog(120.0, slowdown=2.5)
    )


class TestFigure4To7Q1Unloaded:
    """Q1: the optimizer is right, so everything is flat/linear."""

    def test_fig4_cost_estimate_flat(self, q1):
        series = q1.estimated_cost_series()
        lo, hi = metrics.series_min(series), metrics.series_max(series)
        assert hi - lo <= 0.02 * hi  # "almost a straight line"

    def test_fig5_speed_stable(self, q1):
        speeds = [v for _, v in q1.speed_series() if v is not None]
        assert max(speeds) - min(speeds) <= 0.15 * max(speeds)

    def test_fig6_indicator_tracks_actual(self, q1):
        error = metrics.mean_abs_error(
            q1.remaining_series(), q1.actual_remaining_series()
        )
        assert error < 0.1 * q1.total_elapsed

    def test_fig6_indicator_beats_optimizer_line(self, q1):
        ind = metrics.mean_abs_error(
            q1.remaining_series(), q1.actual_remaining_series()
        )
        opt = metrics.mean_abs_error(
            q1.optimizer_remaining_series(), q1.actual_remaining_series()
        )
        assert ind < opt

    def test_fig6_optimizer_line_not_far_off(self, q1):
        # "the dotted line is not far from the dashed line" for Q1.
        opt = metrics.mean_abs_error(
            q1.optimizer_remaining_series(), q1.actual_remaining_series()
        )
        assert opt < 0.4 * q1.total_elapsed

    def test_fig7_percent_nearly_linear(self, q1):
        series = q1.percent_series()
        for t, pct in series:
            expected = 100.0 * t / q1.total_elapsed
            assert pct == pytest.approx(expected, abs=8.0)


class TestFigure9To12Q2Unloaded:
    """Q2: the default 1/3 selectivity wrecks the initial estimate; the
    indicator learns during the lineitem scan and is exact afterwards."""

    def test_fig9_initial_estimate_too_low(self, q2):
        series = q2.estimated_cost_series()
        initial = series[0][1]
        exact = q2.exact_cost_pages
        assert initial < 0.85 * exact

    def test_fig9_flat_during_first_join(self, q2):
        # Nothing refines the lineitem estimate before its scan starts
        # (Section 5.3.1 point 4).
        series = q2.estimated_cost_series()
        lineitem_start = min(
            t for _, t in q2.segment_boundaries if t is not None
        )
        early = [v for t, v in series if t <= lineitem_start * 0.9]
        if len(early) >= 2:
            assert max(early) - min(early) <= 0.02 * max(early)

    def test_fig9_estimate_nondecreasing(self, q2):
        assert metrics.is_nondecreasing(q2.estimated_cost_series(), slack=1.0)

    def test_fig9_reaches_exact_before_completion(self, q2):
        exact = q2.exact_cost_pages
        converged = metrics.convergence_time(
            q2.estimated_cost_series(), exact, tolerance=0.02
        )
        assert converged is not None
        assert converged < 0.95 * q2.total_elapsed

    def test_fig11_converges_to_actual_remaining(self, q2):
        # "the closer to query completion, the more precise".
        rem = q2.remaining_series()
        act = dict(q2.actual_remaining_series())
        late = [(t, v) for t, v in rem if v is not None and t > 0.8 * q2.total_elapsed]
        for t, v in late:
            assert abs(v - act[t]) < 0.15 * q2.total_elapsed

    def test_fig11_indicator_much_better_than_optimizer(self, q2):
        ind = metrics.mean_abs_error(
            q2.remaining_series(), q2.actual_remaining_series()
        )
        opt = metrics.mean_abs_error(
            q2.optimizer_remaining_series(), q2.actual_remaining_series()
        )
        assert ind < 0.6 * opt

    def test_fig12_percent_increases(self, q2):
        assert metrics.is_nondecreasing(q2.percent_series())
        assert q2.percent_series()[-1][1] == pytest.approx(100.0)

    def test_four_segments_like_figure3(self, q2):
        assert q2.num_segments == 4


class TestFigure13To16Q2IoInterference:
    """Q2 under a concurrent file copy (slowdown window [120, 400))."""

    def test_query_runs_longer_than_unloaded(self, q2, q2_io):
        assert q2_io.total_elapsed > 1.2 * q2.total_elapsed

    def test_fig13_learning_slows_during_copy(self, q2, q2_io):
        # The cost estimate still converges to the same exact value...
        assert q2_io.exact_cost_pages == pytest.approx(
            q2.exact_cost_pages, rel=0.02
        )
        # ...but reaches it later in wall time than in the unloaded run.
        t_loaded = metrics.convergence_time(
            q2_io.estimated_cost_series(), q2_io.exact_cost_pages, 0.02
        )
        t_unloaded = metrics.convergence_time(
            q2.estimated_cost_series(), q2.exact_cost_pages, 0.02
        )
        assert t_loaded > t_unloaded

    def test_fig14_speed_drops_during_copy(self, q2_io):
        speeds = dict(q2_io.speed_series())
        before = [v for t, v in speeds.items() if v is not None and t < 110]
        during = [v for t, v in speeds.items() if v is not None and 180 < t < 390]
        assert during and before
        assert min(before) > max(during)

    def test_fig15_remaining_jumps_at_copy_start(self, q2_io):
        rem = q2_io.remaining_series()
        at_onset = metrics.value_near(rem, 115.0)
        after_onset = metrics.value_near(rem, 165.0)
        assert after_onset > at_onset

    def test_fig15_remaining_drops_after_copy_ends(self, q2_io):
        rem = q2_io.remaining_series()
        during = metrics.value_near(rem, 390.0)
        after = metrics.value_near(rem, 430.0)
        assert after < during

    def test_fig15_indicator_beats_optimizer(self, q2_io):
        ind = metrics.mean_abs_error(
            q2_io.remaining_series(), q2_io.actual_remaining_series()
        )
        opt = metrics.mean_abs_error(
            q2_io.optimizer_remaining_series(), q2_io.actual_remaining_series()
        )
        assert ind < 0.6 * opt

    def test_fig16_percent_still_monotone(self, q2_io):
        assert metrics.is_nondecreasing(q2_io.percent_series())


class TestFigure17Q3Correlation:
    """Q3 on correlated data: the join-cardinality estimate is too low,
    detected while the first join's probe runs."""

    @pytest.fixture(scope="class")
    def q3(self):
        db = correlated.build_database(scale=SCALE, config=CFG)
        return run_experiment("Q3", db, queries.Q3)

    def test_initial_estimate_too_low(self, q3):
        initial = q3.estimated_cost_series()[0][1]
        assert initial < 0.95 * q3.exact_cost_pages

    def test_estimate_ramps_to_exact(self, q3):
        converged = metrics.convergence_time(
            q3.estimated_cost_series(), q3.exact_cost_pages, 0.02
        )
        assert converged is not None
        assert converged < q3.total_elapsed

    def test_estimate_flat_after_reaching_exact(self, q3):
        converged = metrics.convergence_time(
            q3.estimated_cost_series(), q3.exact_cost_pages, 0.02
        )
        tail = [
            v for t, v in q3.estimated_cost_series() if t >= converged
        ]
        assert max(tail) - min(tail) <= 0.03 * max(tail)


class TestFigure18Q4TwoErrors:
    """Q4: both joins' estimates are wrong; the indicator adjusts twice."""

    @pytest.fixture(scope="class")
    def q4(self):
        db = tpcr.build_database(scale=SCALE, config=CFG)
        return run_experiment("Q4", db, queries.Q4)

    def test_two_distinct_learning_phases(self, q4):
        series = q4.estimated_cost_series()
        # Find report-to-report increases; there must be rises both before
        # and after the first join finishes (its probe pipeline is the
        # second segment to complete, after the customer hash build).
        join_boundary = sorted(t for _, t in q4.segment_boundaries)[1]
        rises_before = rises_after = 0
        for (t0, v0), (t1, v1) in zip(series, series[1:]):
            if v1 > v0 * 1.005:
                if t1 <= join_boundary:
                    rises_before += 1
                else:
                    rises_after += 1
        assert rises_before > 0
        assert rises_after > 0

    def test_converges_to_exact(self, q4):
        converged = metrics.convergence_time(
            q4.estimated_cost_series(), q4.exact_cost_pages, 0.02
        )
        assert converged is not None


class TestFigure19And20Q5:
    """Q5: CPU-bound nested loops; byte-progress still gives good
    remaining-time estimates, and the indicator adapts to a CPU hog."""

    def test_fig19_indicator_tracks_actual(self, q5):
        # Skip the very first report: its speed window still contains the
        # burst of the inner-relation materialization.
        rem = [(t, v) for t, v in q5.remaining_series() if t >= 20.0]
        act = dict(q5.actual_remaining_series())
        defined = [(t, v) for t, v in rem if v is not None]
        assert defined
        for t, v in defined:
            assert abs(v - act[t]) <= 0.15 * q5.total_elapsed + 5.0

    def test_fig20_query_slows_down(self, q5, q5_cpu):
        assert q5_cpu.total_elapsed > 1.3 * q5.total_elapsed

    def test_fig20_remaining_jumps_at_hog_start(self, q5_cpu):
        rem = q5_cpu.remaining_series()
        before = metrics.value_near(rem, 115.0)
        after = metrics.value_near(rem, 165.0)
        assert after > before

    def test_fig20_tracks_actual_soon_after_onset(self, q5_cpu):
        # "starting from 140 seconds ... almost coincides" (Section 5.6.2).
        rem = q5_cpu.remaining_series()
        act = dict(q5_cpu.actual_remaining_series())
        late = [
            (t, v)
            for t, v in rem
            if v is not None and t >= 170.0 and t <= q5_cpu.total_elapsed
        ]
        assert late
        for t, v in late:
            assert abs(v - act[t]) <= 0.2 * q5_cpu.total_elapsed


class TestOptimizerBeatenEverywhere:
    """The paper's recurring claim: the indicator's remaining-time curve is
    closer to the actual line than the optimizer's, point by point."""

    def test_pointwise_wins_q2(self, q2):
        act = dict(q2.actual_remaining_series())
        wins = total = 0
        for t, v in q2.remaining_series():
            if v is None:
                continue
            total += 1
            if closer_to_actual(v, q2.optimizer_baseline.remaining(t), act[t]):
                wins += 1
        assert total > 0
        assert wins / total >= 0.8
