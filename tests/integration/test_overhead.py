"""Integration: the indicator's overhead and non-interference guarantees.

The paper claims its indicator "imposes a negligible (less than 1%)
penalty on the running time of queries" (Section 1).  In this engine the
claim splits in two:

* **Simulated time**: the tracker charges *no* virtual time at all, so
  monitored and unmonitored runs take identical simulated seconds and do
  identical I/O.
* **Real (host) time**: counting is a few float additions per tuple; the
  pytest-benchmark suite (benchmarks/bench_overhead.py) measures that
  wall-clock cost.
"""

import pytest

from repro.workloads import queries, tpcr


@pytest.fixture(scope="module")
def pair():
    """Two identical databases: one monitored run, one plain run."""
    return (
        tpcr.build_database(scale=0.002, subset_rows=50),
        tpcr.build_database(scale=0.002, subset_rows=50),
    )


class TestZeroSimulatedOverhead:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q5"])
    def test_same_virtual_elapsed(self, pair, name):
        plain_db, monitored_db = pair
        sql = queries.PAPER_QUERIES[name]
        plain_db.restart()
        monitored_db.restart()
        plain = plain_db.execute(sql, keep_rows=False)
        monitored = monitored_db.execute_with_progress(sql)
        assert monitored.result.elapsed == pytest.approx(plain.elapsed, rel=1e-9)

    def test_same_io_counters(self, pair):
        plain_db, monitored_db = pair
        plain_db.restart()
        monitored_db.restart()
        io_before_plain = dict(plain_db.disk.io_counters())
        io_before_mon = dict(monitored_db.disk.io_counters())
        plain_db.execute(queries.Q2, keep_rows=False)
        monitored_db.execute_with_progress(queries.Q2)
        delta_plain = {
            k: v - io_before_plain[k] for k, v in plain_db.disk.io_counters().items()
        }
        delta_mon = {
            k: v - io_before_mon[k]
            for k, v in monitored_db.disk.io_counters().items()
        }
        assert delta_plain == delta_mon


class TestPacing:
    def test_update_every_ten_seconds(self, pair):
        # "our prototyped progress indicators could be updated every ten
        # seconds" (Section 5): one report per 10 virtual seconds.
        _, monitored_db = pair
        monitored_db.restart()
        monitored = monitored_db.execute_with_progress(queries.Q2)
        elapsed = monitored.result.elapsed
        periodic = [r for r in monitored.log.reports if not r.finished]
        assert len(periodic) == int(elapsed / 10.0)
