"""Unit tests for the work tracker (U counters)."""

import pytest

from repro.executor.work import WorkTracker
from repro.sim.clock import VirtualClock


def make_tracker(num_inputs=(1, 2), final=1, clock=None):
    return WorkTracker(list(num_inputs), final_segment=final, clock=clock)


class TestCounting:
    def test_input_rows_accumulate(self):
        tracker = make_tracker()
        tracker.input_rows(0, 0, 10, 400.0)
        tracker.input_rows(0, 0, 5, 200.0)
        seg = tracker.segments[0]
        assert seg.input_rows[0] == 15
        assert seg.input_bytes[0] == 600.0
        assert tracker.total_done_bytes == 600.0

    def test_output_rows_counted_for_inner_segments(self):
        tracker = make_tracker()
        tracker.output_rows(0, 3, 90.0)
        assert tracker.segments[0].output_rows == 3
        assert tracker.total_done_bytes == 90.0

    def test_final_segment_output_not_work(self):
        # Section 4.5: the final result shown to the user is not counted.
        tracker = make_tracker()
        tracker.output_rows(1, 3, 90.0)
        assert tracker.segments[1].output_rows == 3
        assert tracker.total_done_bytes == 0.0

    def test_extra_pass_counts(self):
        tracker = make_tracker()
        tracker.extra_pass(0, 500.0)
        assert tracker.segments[0].extra_bytes == 500.0
        assert tracker.total_done_bytes == 500.0

    def test_done_pages(self):
        tracker = make_tracker()
        tracker.input_rows(0, 0, 1, 8192.0)
        assert tracker.done_pages(8192) == pytest.approx(1.0)

    def test_avg_widths(self):
        tracker = make_tracker()
        tracker.input_rows(0, 0, 4, 100.0)
        tracker.output_rows(0, 2, 80.0)
        seg = tracker.segments[0]
        assert seg.avg_input_width(0) == pytest.approx(25.0)
        assert seg.avg_output_width() == pytest.approx(40.0)

    def test_avg_widths_none_before_data(self):
        seg = make_tracker().segments[0]
        assert seg.avg_input_width(0) is None
        assert seg.avg_output_width() is None


class TestLifecycle:
    def test_first_charge_starts_segment(self):
        tracker = make_tracker()
        assert not tracker.segments[0].started
        tracker.input_rows(0, 0, 1, 10.0)
        assert tracker.segments[0].started

    def test_started_at_records_clock(self):
        clock = VirtualClock()
        tracker = make_tracker(clock=clock)
        clock.advance(5.0)
        tracker.input_rows(0, 0, 1, 10.0)
        assert tracker.segments[0].started_at == pytest.approx(5.0)

    def test_segment_finished(self):
        clock = VirtualClock()
        tracker = make_tracker(clock=clock)
        clock.advance(3.0)
        tracker.segment_finished(0)
        seg = tracker.segments[0]
        assert seg.finished
        assert seg.finished_at == pytest.approx(3.0)

    def test_finished_idempotent(self):
        tracker = make_tracker()
        calls = []
        tracker.on_segment_finished = calls.append
        tracker.segment_finished(0)
        tracker.segment_finished(0)
        assert calls == [0]

    def test_finish_all(self):
        tracker = make_tracker()
        tracker.finish_all()
        assert all(s.finished for s in tracker.segments)


class TestCurrentSegment:
    def test_none_before_start(self):
        assert make_tracker().current_segment() is None

    def test_deepest_unfinished_started(self):
        tracker = make_tracker((1, 1, 1), final=2)
        tracker.input_rows(0, 0, 1, 10.0)
        assert tracker.current_segment() == 0
        tracker.segment_finished(0)
        tracker.input_rows(1, 0, 1, 10.0)
        assert tracker.current_segment() == 1

    def test_overlapping_segments_report_earliest(self):
        # A pipelined plan can have several started segments; the paper's
        # "current segment" is the one still consuming its dominant input.
        tracker = make_tracker((1, 1, 1), final=2)
        tracker.input_rows(0, 0, 1, 10.0)
        tracker.input_rows(1, 0, 1, 10.0)
        assert tracker.current_segment() == 0

    def test_none_after_finish_all(self):
        tracker = make_tracker()
        tracker.finish_all()
        assert tracker.current_segment() is None
