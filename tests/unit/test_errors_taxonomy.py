"""Unit tests: the transient/fatal error taxonomy (repro.errors)."""

from __future__ import annotations

import pytest

from repro import errors
from repro.errors import (
    BufferPoolError,
    FatalError,
    PageCorruptionError,
    QueryTimeoutError,
    ReproError,
    SpillSpaceError,
    StorageError,
    TransientError,
    TransientIOError,
    is_transient,
)


class TestTaxonomy:
    def test_transient_io_is_transient_storage_error(self):
        err = TransientIOError("boom")
        assert isinstance(err, StorageError)
        assert isinstance(err, TransientError)
        assert is_transient(err)

    def test_page_corruption_is_transient(self):
        assert is_transient(PageCorruptionError("checksum"))

    def test_spill_space_is_fatal(self):
        err = SpillSpaceError("full")
        assert isinstance(err, FatalError)
        assert not is_transient(err)

    def test_buffer_pool_error_is_fatal(self):
        err = BufferPoolError("all pinned")
        assert isinstance(err, FatalError)
        assert not is_transient(err)

    def test_timeout_is_not_transient(self):
        assert not is_transient(QueryTimeoutError("deadline"))

    def test_foreign_errors_are_not_transient(self):
        assert not is_transient(RuntimeError("not ours"))

    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError), name

    def test_no_error_is_both_transient_and_fatal(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if not (isinstance(obj, type) and issubclass(obj, ReproError)):
                continue
            if obj in (TransientError, FatalError):
                continue
            assert not (
                issubclass(obj, TransientError) and issubclass(obj, FatalError)
            ), name

    def test_one_boundary_catch(self):
        with pytest.raises(ReproError):
            raise TransientIOError("caught at the boundary")
