"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import Token, tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT From WHERE") == [
            ("keyword", "select"),
            ("keyword", "from"),
            ("keyword", "where"),
        ]

    def test_identifiers_lowercased(self):
        assert kinds("LineItem c_Name") == [("ident", "lineitem"), ("ident", "c_name")]

    def test_integer_literal(self):
        assert kinds("42") == [("number", 42)]

    def test_float_literal(self):
        assert kinds("3.25") == [("number", 3.25)]

    def test_qualified_column_not_a_float(self):
        assert kinds("a.b") == [("ident", "a"), ("op", "."), ("ident", "b")]

    def test_string_literal(self):
        assert kinds("'hello'") == [("string", "hello")]

    def test_string_escaped_quote(self):
        assert kinds("'it''s'") == [("string", "it's")]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_two_char_operators(self):
        assert kinds("<> <= >=") == [("op", "<>"), ("op", "<="), ("op", ">=")]

    def test_bang_equals_normalized(self):
        assert kinds("a != b")[1] == ("op", "<>")

    def test_single_char_operators(self):
        assert kinds("( ) , * = < >") == [
            ("op", "("),
            ("op", ")"),
            ("op", ","),
            ("op", "*"),
            ("op", "="),
            ("op", "<"),
            ("op", ">"),
        ]

    def test_line_comment_skipped(self):
        assert kinds("select -- a comment\n x") == [
            ("keyword", "select"),
            ("ident", "x"),
        ]

    def test_minus_is_operator(self):
        assert kinds("1 - 2") == [("number", 1), ("op", "-"), ("number", 2)]

    def test_semicolon_ignored(self):
        assert kinds("select x;") == [("keyword", "select"), ("ident", "x")]

    def test_invalid_character_raises_with_position(self):
        with pytest.raises(LexerError) as info:
            tokenize("select @")
        assert info.value.position == 7

    def test_eof_token_terminates(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == "eof"

    def test_matches_helper(self):
        token = Token("keyword", "select", 0)
        assert token.matches("keyword")
        assert token.matches("keyword", "select")
        assert not token.matches("keyword", "from")
