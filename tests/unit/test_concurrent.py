"""Unit tests for concurrent workloads on a shared virtual clock."""

import pytest

from repro.core.concurrent import ConcurrentWorkload
from repro.errors import ProgressError
from repro.workloads import queries, tpcr


def make_db():
    return tpcr.build_database(scale=0.002, subset_rows=40)


class TestInterleaving:
    def test_queries_complete_with_correct_counts(self):
        db = make_db()
        workload = ConcurrentWorkload(db)
        workload.add("scan", "select * from lineitem")
        workload.add("join", queries.Q2)
        runs = workload.run()
        lineitem = db.catalog.get_table("lineitem").num_tuples
        assert runs["scan"].row_count == lineitem
        assert runs["join"].row_count == lineitem  # key/FK join

    def test_results_match_solo_execution(self):
        solo = make_db().execute(queries.Q2, keep_rows=False)
        workload = ConcurrentWorkload(make_db())
        workload.add("q2", queries.Q2)
        runs = workload.run()
        assert runs["q2"].row_count == solo.row_count

    def test_contention_stretches_elapsed_time(self):
        solo = make_db().execute_with_progress("select * from lineitem")
        workload = ConcurrentWorkload(make_db())
        workload.add("scan", "select * from lineitem")
        workload.add("join", queries.Q2)
        runs = workload.run()
        assert runs["scan"].elapsed > 1.3 * solo.result.elapsed

    def test_each_query_gets_its_own_log(self):
        workload = ConcurrentWorkload(make_db())
        workload.add("a", "select * from orders")
        workload.add("b", "select * from customer")
        runs = workload.run()
        assert runs["a"].log is not None
        assert runs["b"].log is not None
        assert runs["a"].log.final().percent_done == pytest.approx(100.0)

    def test_indicator_sees_contention_as_low_speed(self):
        # The scan's observed speed with a competitor must be lower than
        # alone — the contention signal the paper's interference tests
        # produce with an external job.
        solo = make_db().execute_with_progress("select * from lineitem")
        solo_speeds = [
            v for _, v in solo.log.speed_series() if v is not None
        ]
        workload = ConcurrentWorkload(make_db())
        workload.add("scan", "select * from lineitem")
        workload.add("join", queries.Q2)
        runs = workload.run()
        loaded_speeds = [
            v for _, v in runs["scan"].log.speed_series() if v is not None
        ]
        assert loaded_speeds
        assert max(loaded_speeds) < max(solo_speeds)


class TestSuspendResume:
    def test_suspended_query_makes_no_progress(self):
        workload = ConcurrentWorkload(make_db())
        workload.add("victim", "select * from lineitem")
        workload.add("other", "select * from orders")
        workload.suspend("victim")
        workload.step()
        assert workload.queries["victim"].row_count == 0
        assert workload.queries["other"].row_count > 0

    def test_resume_lets_query_finish(self):
        workload = ConcurrentWorkload(make_db())
        workload.add("victim", "select * from customer")
        workload.suspend("victim")
        workload.add("other", "select * from orders")
        while workload.queries["other"].finished_at is None:
            workload.step()
        workload.resume("victim")
        workload.run()
        assert workload.queries["victim"].done

    def test_all_suspended_raises(self):
        workload = ConcurrentWorkload(make_db())
        workload.add("only", "select * from customer")
        workload.suspend("only")
        with pytest.raises(ProgressError, match="deadlock"):
            workload.step()

    def test_unknown_query_rejected(self):
        workload = ConcurrentWorkload(make_db())
        with pytest.raises(ProgressError):
            workload.suspend("ghost")


class TestApiGuards:
    def test_duplicate_name_rejected(self):
        workload = ConcurrentWorkload(make_db())
        workload.add("q", "select * from customer")
        with pytest.raises(ProgressError):
            workload.add("q", "select * from orders")

    def test_add_after_start_rejected(self):
        workload = ConcurrentWorkload(make_db())
        workload.add("q", "select * from customer")
        workload.step()
        with pytest.raises(ProgressError):
            workload.add("late", "select * from orders")

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ProgressError):
            ConcurrentWorkload(make_db(), quantum=0.0)

    def test_invalid_advance_rejected(self):
        workload = ConcurrentWorkload(make_db())
        workload.add("q", "select * from customer")
        with pytest.raises(ProgressError):
            workload.advance(0.0)

    def test_reports_cover_unfinished_queries(self):
        workload = ConcurrentWorkload(make_db())
        workload.add("a", "select * from lineitem")
        workload.add("b", "select * from lineitem")
        workload.step()
        reports = workload.reports()
        assert set(reports) == {"a", "b"}
        workload.run()
        assert workload.reports() == {}
