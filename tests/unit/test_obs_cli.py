"""Unit tests: the ``python -m repro.obs`` CLI (small scales throughout)."""

from __future__ import annotations

import json

from repro.obs.cli import main

SCALE = ["--scale", "0.002"]


class TestTraceCommand:
    def test_trace_q1_exports_and_reports_coverage(self, tmp_path, capsys):
        assert main(["trace", "--query", "q1", "--out", str(tmp_path), *SCALE]) == 0
        out = capsys.readouterr().out
        assert "events recorded" in out
        assert "span coverage   : 100.0%" in out
        assert (tmp_path / "q1.trace.jsonl").exists()
        doc = json.loads((tmp_path / "q1.trace.json").read_text())
        assert any(e.get("cat") == "query" for e in doc["traceEvents"])

    def test_trace_adhoc_sql(self, tmp_path, capsys):
        code = main([
            "trace", "--sql", "select count(*) from customer",
            "--out", str(tmp_path), *SCALE,
        ])
        assert code == 0
        assert (tmp_path / "adhoc.trace.jsonl").exists()

    def test_unknown_query_exits_two(self, capsys):
        assert main(["trace", "--query", "q9"]) == 2
        assert "unknown query" in capsys.readouterr().err


class TestAuditCommand:
    def test_audit_fresh_run(self, capsys):
        assert main(["audit", "--query", "q1", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "|error|" in out
        assert "remaining-time error" in out

    def test_audit_saved_trace(self, tmp_path, capsys):
        assert main(["trace", "--query", "q1", "--out", str(tmp_path), *SCALE]) == 0
        capsys.readouterr()
        trace_file = tmp_path / "q1.trace.jsonl"
        assert main(["audit", "--input", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert str(trace_file) in out
        assert "query elapsed" in out


class TestMetricsCommand:
    def test_metrics_dump(self, capsys):
        assert main(["metrics", "--query", "q1", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "io.reads.seq" in out
        assert "reports.emitted" in out
        assert "Segment spans" in out


class TestLeaderboardCommand:
    def test_help_lists_every_subcommand(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for sub in ("trace", "audit", "metrics", "leaderboard"):
            assert sub in out, sub

    def test_list_prints_the_grid(self, capsys):
        assert main(["leaderboard", "--grid", "tier1", "--list"]) == 0
        out = capsys.readouterr().out
        assert "40 variant(s)" in out
        assert "xs-uniform-scan-full" in out
        capsys.readouterr()
        assert main(["leaderboard", "--grid", "full", "--list"]) == 0
        assert "336 variant(s)" in capsys.readouterr().out

    def test_check_against_explicit_baseline(self, tmp_path, capsys, monkeypatch):
        # Score a persisted board against itself: always a PASS.
        from repro.obs.observatory import run_leaderboard, write_leaderboard
        from repro.workloads.grid import variants_by_name

        variants = [variants_by_name()["xs-uniform-scan-half"]]
        board = run_leaderboard(variants, "small")
        path = tmp_path / "board.json"
        write_leaderboard(board, path)

        code = main([
            "leaderboard", "--current", str(path),
            "--check", "--baseline", str(path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "gate: PASS" in out

    def test_check_without_baseline_exits_two(self, tmp_path, capsys):
        from repro.obs.observatory import run_leaderboard, write_leaderboard
        from repro.workloads.grid import variants_by_name

        variants = [variants_by_name()["xs-uniform-scan-half"]]
        write_leaderboard(
            run_leaderboard(variants, "small"), tmp_path / "board.json"
        )
        code = main([
            "leaderboard", "--current", str(tmp_path / "board.json"),
            "--check", "--baseline", str(tmp_path / "missing.json"),
        ])
        assert code == 2
        assert "baseline not found" in capsys.readouterr().err
