"""Unit tests: the ``python -m repro.obs`` CLI (small scales throughout)."""

from __future__ import annotations

import json

from repro.obs.cli import main

SCALE = ["--scale", "0.002"]


class TestTraceCommand:
    def test_trace_q1_exports_and_reports_coverage(self, tmp_path, capsys):
        assert main(["trace", "--query", "q1", "--out", str(tmp_path), *SCALE]) == 0
        out = capsys.readouterr().out
        assert "events recorded" in out
        assert "span coverage   : 100.0%" in out
        assert (tmp_path / "q1.trace.jsonl").exists()
        doc = json.loads((tmp_path / "q1.trace.json").read_text())
        assert any(e.get("cat") == "query" for e in doc["traceEvents"])

    def test_trace_adhoc_sql(self, tmp_path, capsys):
        code = main([
            "trace", "--sql", "select count(*) from customer",
            "--out", str(tmp_path), *SCALE,
        ])
        assert code == 0
        assert (tmp_path / "adhoc.trace.jsonl").exists()

    def test_unknown_query_exits_two(self, capsys):
        assert main(["trace", "--query", "q9"]) == 2
        assert "unknown query" in capsys.readouterr().err


class TestAuditCommand:
    def test_audit_fresh_run(self, capsys):
        assert main(["audit", "--query", "q1", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "|error|" in out
        assert "remaining-time error" in out

    def test_audit_saved_trace(self, tmp_path, capsys):
        assert main(["trace", "--query", "q1", "--out", str(tmp_path), *SCALE]) == 0
        capsys.readouterr()
        trace_file = tmp_path / "q1.trace.jsonl"
        assert main(["audit", "--input", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert str(trace_file) in out
        assert "query elapsed" in out


class TestMetricsCommand:
    def test_metrics_dump(self, capsys):
        assert main(["metrics", "--query", "q1", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "io.reads.seq" in out
        assert "reports.emitted" in out
        assert "Segment spans" in out
