"""Unit tests for the concurrent workload's clock gate in isolation."""

import threading

import pytest

from repro.core.concurrent import _ClockGate
from repro.errors import ProgressError
from repro.sim.clock import VirtualClock
from repro.sim.load import CPU


def run_worker(clock, gate, charges, done_event, go_event):
    """A worker thread that charges the clock in small steps.

    Like ConcurrentWorkload, workers wait on ``go_event`` so the driver can
    register their thread ids with the gate before any charge happens.
    """

    def work():
        go_event.wait()
        for _ in range(charges):
            clock.advance(0.1, CPU)
        gate.finish(threading.get_ident())
        done_event.set()

    thread = threading.Thread(target=work, daemon=True)
    return thread


class TestClockGate:
    def test_single_worker_progresses(self):
        clock = VirtualClock()
        gate = _ClockGate(clock, quantum=0.5)
        clock.gate = gate
        done, go = threading.Event(), threading.Event()
        thread = run_worker(clock, gate, charges=20, done_event=done, go_event=go)
        thread.start()
        gate.register(thread.ident, "w")
        go.set()
        gate.run_until(100.0, lambda: not done.is_set())
        thread.join(timeout=5.0)
        assert done.is_set()
        assert clock.now == pytest.approx(2.0)

    def test_two_workers_share_time_fairly(self):
        clock = VirtualClock()
        gate = _ClockGate(clock, quantum=0.2)
        clock.gate = gate
        done1, done2, go = threading.Event(), threading.Event(), threading.Event()
        t1 = run_worker(clock, gate, charges=30, done_event=done1, go_event=go)
        t2 = run_worker(clock, gate, charges=30, done_event=done2, go_event=go)
        t1.start()
        t2.start()
        gate.register(t1.ident, "a")
        gate.register(t2.ident, "b")
        go.set()
        pending = lambda: not (done1.is_set() and done2.is_set())  # noqa: E731
        while pending():
            gate.run_until(clock.now + 1.0, pending)
        t1.join(timeout=5.0)
        t2.join(timeout=5.0)
        assert clock.now == pytest.approx(6.0)

    def test_window_limit_pauses_workers(self):
        clock = VirtualClock()
        gate = _ClockGate(clock, quantum=0.5)
        clock.gate = gate
        done, go = threading.Event(), threading.Event()
        thread = run_worker(clock, gate, charges=100, done_event=done, go_event=go)
        thread.start()
        gate.register(thread.ident, "w")
        go.set()
        gate.run_until(1.0, lambda: not done.is_set())
        # The worker wanted 10.0 seconds of work but the window closed at
        # ~1.0 (one in-flight charge may overshoot slightly).
        assert clock.now == pytest.approx(1.0, abs=0.2)
        assert not done.is_set()
        gate.run_until(100.0, lambda: not done.is_set())
        thread.join(timeout=5.0)
        assert done.is_set()

    def test_suspend_last_runnable_rejected(self):
        clock = VirtualClock()
        gate = _ClockGate(clock, quantum=0.5)
        gate.register(12345, "only")
        with pytest.raises(ProgressError):
            gate.suspend(12345)

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ProgressError):
            _ClockGate(VirtualClock(), quantum=0.0)

    def test_unregistered_thread_passes_through(self):
        clock = VirtualClock()
        gate = _ClockGate(clock, quantum=0.5)
        clock.gate = gate
        clock.advance(3.0, CPU)  # the driving thread is not gated
        assert clock.now == pytest.approx(3.0)
