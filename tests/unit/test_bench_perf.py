"""Unit tests: the real-time perf suite and its baseline gate."""

from __future__ import annotations

import importlib.util
import json
import math
import pathlib
import sys

import pytest

from repro.bench import perf

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _case_result(name, row_s, batch_s, scan=False):
    return perf.CaseResult(
        name=name,
        scan_dominated=scan,
        monitor=False,
        row_s=row_s,
        batch_s=batch_s,
    )


def _suite(cases):
    return perf.SuiteResult(scale=0.01, runs=3, cases=tuple(cases))


class TestRegistry:
    def test_names_unique_and_stable(self):
        names = [c.name for c in perf.PERF_CASES]
        assert len(names) == len(set(names))
        assert len(names) >= 6

    def test_has_scan_dominated_and_monitored_cases(self):
        assert any(c.scan_dominated for c in perf.PERF_CASES)
        assert any(c.monitor for c in perf.PERF_CASES)

    def test_select_cases_default_is_full_registry(self):
        assert perf.select_cases(None) == list(perf.PERF_CASES)

    def test_select_cases_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown perf case"):
            perf.select_cases(["scan_wide", "nope"])

    def test_baseline_matches_registry(self):
        """The committed baseline covers exactly the current registry."""
        baseline = perf.load_baseline()
        assert {c["name"] for c in baseline["cases"]} == {
            c.name for c in perf.PERF_CASES
        }

    def test_committed_baseline_meets_all_targets(self):
        baseline = perf.load_baseline()
        assert baseline["geomean_speedup"] >= perf.GEOMEAN_FLOOR
        for case in baseline["cases"]:
            assert case["speedup"] > 0
            if case["scan_dominated"]:
                assert case["speedup"] >= perf.SCAN_FLOOR
            assert case["batch_s"] <= case["row_s"] * (
                1.0 + perf.REGRESSION_BUDGET
            )


class TestChecks:
    def test_clean_suite_passes(self):
        suite = _suite(
            [
                _case_result("a", 0.10, 0.02, scan=True),
                _case_result("b", 0.10, 0.03),
            ]
        )
        assert perf.check_suite(suite) == []

    def test_geomean_floor_violation(self):
        suite = _suite([_case_result("a", 0.10, 0.05)])
        problems = perf.check_suite(suite)
        assert any("geomean" in p for p in problems)

    def test_scan_floor_violation(self):
        suite = _suite([_case_result("a", 0.10, 0.025, scan=True)])
        problems = perf.check_suite(suite)
        assert any("scan-dominated" in p for p in problems)

    def test_regression_budget_violation(self):
        ok = _suite(
            [_case_result("fast", 0.1, 0.02), _case_result("slow", 0.1, 0.105)]
        )
        assert not any("slower" in p for p in perf.check_suite(ok))
        bad = _suite(
            [_case_result("fast", 0.1, 0.02), _case_result("slow", 0.1, 0.12)]
        )
        assert any("slower" in p for p in perf.check_suite(bad))

    def test_geomean_is_geometric(self):
        suite = _suite(
            [_case_result("a", 0.2, 0.1), _case_result("b", 0.8, 0.1)]
        )
        assert suite.geomean_speedup == pytest.approx(math.sqrt(2 * 8))


class TestBaselineComparison:
    BASE = {
        "schema": perf.PERF_SCHEMA,
        "cases": [
            {"name": "a", "speedup": 4.0},
            {"name": "b", "speedup": 6.0},
        ],
    }

    def test_within_tolerance_passes(self):
        fresh = _suite(
            [_case_result("a", 0.09, 0.03), _case_result("b", 0.25, 0.05)]
        )  # 3.0x and 5.0x vs 4.0x/6.0x baseline: inside 35%
        assert perf.compare_to_baseline(fresh, self.BASE, tolerance=0.35) == []

    def test_collapsed_speedup_fails(self):
        fresh = _suite(
            [_case_result("a", 0.06, 0.03), _case_result("b", 0.25, 0.05)]
        )  # case a fell to 2.0x against a 4.0x baseline
        problems = perf.compare_to_baseline(fresh, self.BASE, tolerance=0.35)
        assert any("case a" in p for p in problems)

    def test_subset_only_compares_present_cases(self):
        fresh = _suite([_case_result("b", 0.25, 0.05)])
        assert perf.compare_to_baseline(fresh, self.BASE, tolerance=0.35) == []

    def test_case_missing_from_baseline_fails(self):
        fresh = _suite([_case_result("new", 0.1, 0.02)])
        problems = perf.compare_to_baseline(fresh, self.BASE)
        assert any("missing from the baseline" in p for p in problems)


class TestSerialization:
    def test_doc_round_trips(self, tmp_path):
        suite = _suite(
            [
                _case_result("a", 0.10, 0.02, scan=True),
                _case_result("b", 0.10, 0.03),
            ]
        )
        path = perf.write_baseline(suite, tmp_path / "base.json")
        doc = perf.load_baseline(path)
        assert doc["schema"] == perf.PERF_SCHEMA
        assert doc["geomean_speedup"] == pytest.approx(
            suite.geomean_speedup, rel=1e-3
        )
        assert [c["name"] for c in doc["cases"]] == ["a", "b"]

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="expected schema"):
            perf.load_baseline(path)

    def test_sheet_renders_targets_and_cases(self):
        suite = _suite(
            [
                _case_result("scan_thing", 0.10, 0.015, scan=True),
                _case_result("agg_thing", 0.10, 0.03),
            ]
        )
        sheet = perf.render_sheet(suite)
        assert "scan_thing" in sheet and "agg_thing" in sheet
        assert "bit-identical" in sheet
        assert "perfcheck" in sheet


# ----------------------------------------------------------------------
# benchmarks/common.py: the repro.bench/2 result schema


def _load_benchmarks_common():
    path = REPO_ROOT / "benchmarks" / "common.py"
    spec = importlib.util.spec_from_file_location("_bench_common", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["_bench_common"] = module
    spec.loader.exec_module(module)
    return module


class TestBenchResultSchema:
    def test_writes_schema_2_with_real_time(self, tmp_path, monkeypatch):
        common = _load_benchmarks_common()
        monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
        path = common.write_bench_json(
            "unit_demo",
            scalars={"total_elapsed_s": 12.0},
            real_time_s=0.25,
        )
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.bench/2"
        assert doc["real_time_s"] == 0.25

    def test_read_upgrades_schema_1(self, tmp_path):
        common = _load_benchmarks_common()
        old = tmp_path / "old.json"
        old.write_text(
            json.dumps(
                {"schema": "repro.bench/1", "bench": "x", "scalars": {"a": 1}}
            )
        )
        doc = common.read_bench_json(old)
        assert doc["real_time_s"] is None
        assert doc["scalars"] == {"a": 1}

    def test_read_rejects_unknown_schema(self, tmp_path):
        common = _load_benchmarks_common()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro.bench/99"}))
        with pytest.raises(ValueError, match="unknown bench schema"):
            common.read_bench_json(bad)

    def test_committed_results_all_readable(self):
        """Every committed results document parses under the reader."""
        common = _load_benchmarks_common()
        results = REPO_ROOT / "benchmarks" / "results"
        read = 0
        for path in sorted(results.glob("*.json")):
            doc = json.loads(path.read_text())
            if str(doc.get("schema", "")).startswith("repro.bench/"):
                common.read_bench_json(path)
                read += 1
        assert read > 0
