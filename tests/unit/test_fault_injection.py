"""Unit tests: fault injection wired into the disk and buffer pool."""

from __future__ import annotations

import pytest

from repro.config import CostModelConfig, SystemConfig
from repro.database import Database
from repro.errors import SpillSpaceError, TransientIOError
from repro.fault import (
    BufferPressureWindow,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SlowDiskWindow,
)
from repro.obs.bus import TraceBus
from repro.sim.clock import VirtualClock
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page


def _disk(plan=None, trace=None):
    clock = VirtualClock()
    disk = SimulatedDisk(clock, CostModelConfig())
    if plan is not None:
        disk.faults = FaultInjector(plan, clock)
    disk.trace = trace
    return disk


def _file_with_pages(disk, n=10, temp=False):
    handle = disk.allocate("f", temp=temp)
    for _ in range(n):
        disk.append_page(handle, Page(capacity=8192), charge_io=False)
    return handle


class TestRetryLoop:
    def test_transient_fault_is_retried_and_recovers(self):
        trace = TraceBus()
        plan = FaultPlan(seed=0, transient_read_rate=1.0, max_repeat=1)
        disk = _disk(plan, trace)
        handle = _file_with_pages(disk)

        disk.read_page(handle, 0)  # faults once, one retry succeeds

        counts = trace.seal().counts()
        assert counts.get("fault_injected") == 1
        assert counts.get("io_retry") == 1
        assert "io_gave_up" not in counts
        assert disk.faults.retries == 1
        assert disk.faults.gave_up == 0

    def test_retry_charges_io_and_backoff_time(self):
        plan = FaultPlan(seed=0, transient_read_rate=1.0, max_repeat=1)
        clean = _disk()
        faulty = _disk(plan)
        h_clean = _file_with_pages(clean)
        h_faulty = _file_with_pages(faulty)

        clean.read_page(h_clean, 0)
        faulty.read_page(h_faulty, 0)

        # The faulted read pays the transfer twice plus the backoff wait.
        assert faulty.seq_reads == 2 * clean.seq_reads
        backoff = plan.retry.backoff(1)
        assert faulty.clock.now == pytest.approx(
            2 * clean.clock.now + backoff
        )

    def test_exhausted_budget_raises_the_transient_error(self):
        trace = TraceBus()
        # 5 consecutive failures > 3 retries -> the disk gives up.
        plan = FaultPlan(
            seed=0, transient_read_rate=1.0, max_repeat=5,
            retry=RetryPolicy(max_attempts=4),
        )
        disk = _disk(plan, trace)
        handle = _file_with_pages(disk)
        # max_repeat=5 draws failures in [1,5]; find a page that needs > 3.
        with pytest.raises(TransientIOError):
            for page_no in range(10):
                disk.read_page(handle, page_no)
        counts = trace.seal().counts()
        assert counts.get("io_gave_up", 0) >= 1
        assert disk.faults.gave_up >= 1

    def test_write_faults_retry_too(self):
        trace = TraceBus()
        plan = FaultPlan(seed=0, transient_write_rate=1.0, max_repeat=1)
        disk = _disk(plan, trace)
        handle = disk.allocate("w")
        disk.append_page(handle, Page(capacity=8192))
        counts = trace.seal().counts()
        assert counts.get("fault_injected") == 1
        assert counts.get("io_retry") == 1

    def test_uncharged_io_is_never_faulted(self):
        plan = FaultPlan(seed=0, transient_read_rate=1.0, max_repeat=1)
        disk = _disk(plan)
        handle = _file_with_pages(disk)
        for page_no in range(10):
            disk.read_page(handle, page_no, charge_io=False)
        assert disk.faults.counters()["io_retries"] == 0


class TestSlowDisk:
    def test_active_window_multiplies_io_cost(self):
        plan = FaultPlan(
            seed=0, slow_windows=(SlowDiskWindow(0.0, 1000.0, factor=3.0),)
        )
        slow = _disk(plan)
        clean = _disk()
        h_slow = _file_with_pages(slow)
        h_clean = _file_with_pages(clean)
        for page_no in range(5):
            slow.read_page(h_slow, page_no)
            clean.read_page(h_clean, page_no)
        assert slow.clock.now == pytest.approx(3.0 * clean.clock.now)


class TestSpillBudget:
    def test_temp_writes_count_against_budget(self):
        plan = FaultPlan(seed=0, spill_capacity_pages=2)
        disk = _disk(plan)
        temp = disk.allocate("spill", temp=True)
        disk.append_page(temp, Page(capacity=8192))
        disk.append_page(temp, Page(capacity=8192))
        with pytest.raises(SpillSpaceError):
            disk.append_page(temp, Page(capacity=8192))

    def test_permanent_writes_are_exempt(self):
        plan = FaultPlan(seed=0, spill_capacity_pages=1)
        disk = _disk(plan)
        perm = disk.allocate("perm", temp=False)
        for _ in range(5):
            disk.append_page(perm, Page(capacity=8192))
        assert disk.faults.spill_pages_written == 0


class TestBufferPressure:
    def test_pressure_window_shrinks_effective_capacity(self):
        clock = VirtualClock()
        disk = SimulatedDisk(clock, CostModelConfig())
        pool = BufferPool(disk, capacity_pages=10, cost=CostModelConfig())
        plan = FaultPlan(
            seed=0,
            pressure_windows=(
                BufferPressureWindow(0.0, 1000.0, reserved_frames=6),
            ),
        )
        pool.faults = FaultInjector(plan, clock)
        handle = _file_with_pages(disk)
        for page_no in range(10):
            pool.get_page(handle, page_no)
        assert pool.effective_capacity() == 4
        assert pool.num_cached <= 4

    def test_capacity_never_drops_below_one(self):
        clock = VirtualClock()
        disk = SimulatedDisk(clock, CostModelConfig())
        pool = BufferPool(disk, capacity_pages=4, cost=CostModelConfig())
        plan = FaultPlan(
            seed=0,
            pressure_windows=(
                BufferPressureWindow(0.0, 1000.0, reserved_frames=99),
            ),
        )
        pool.faults = FaultInjector(plan, clock)
        handle = _file_with_pages(disk)
        for page_no in range(4):
            pool.get_page(handle, page_no)
        assert pool.effective_capacity() == 1
        assert pool.num_cached == 1


class TestDatabaseFacade:
    def test_install_and_clear(self):
        db = Database(config=SystemConfig())
        injector = db.install_faults(FaultPlan(seed=1))
        assert db.faults is injector
        assert db.disk.faults is injector
        assert db.buffer_pool.faults is injector
        db.clear_faults()
        assert db.faults is None
        assert db.buffer_pool.faults is None

    def test_query_results_identical_under_transient_faults(self, small_db):
        sql = "select * from t1 where b < 5"
        baseline = small_db.connect().submit(sql, trace=False).result().rows
        small_db.install_faults(
            FaultPlan(seed=11, transient_read_rate=0.2, max_repeat=1)
        )
        try:
            faulted = small_db.connect().submit(sql, trace=False).result().rows
        finally:
            small_db.clear_faults()
        assert faulted == baseline
