"""Unit tests for histograms, column statistics and ANALYZE."""

import pytest

from repro.catalog.analyze import analyze_table
from repro.catalog.catalog import Catalog
from repro.catalog.statistics import ColumnStatistics, Histogram
from repro.config import CostModelConfig
from repro.sim.clock import VirtualClock
from repro.storage.disk import SimulatedDisk
from repro.storage.schema import Column, Schema
from repro.storage.types import FLOAT, INTEGER, string


class TestHistogram:
    def test_from_values_uniform(self):
        h = Histogram.from_values(list(range(100)), 10)
        assert h is not None
        assert h.num_buckets == 10
        assert h.bounds[0] == 0
        assert h.bounds[-1] == 99

    def test_from_values_empty_returns_none(self):
        assert Histogram.from_values([], 10) is None
        assert Histogram.from_values([None, None], 10) is None

    def test_fraction_below_extremes(self):
        h = Histogram.from_values(list(range(100)), 10)
        assert h.fraction_below(-5) == 0.0
        assert h.fraction_below(1000) == 1.0

    def test_fraction_below_midpoint(self):
        h = Histogram.from_values(list(range(100)), 10)
        assert h.fraction_below(50) == pytest.approx(0.5, abs=0.05)

    def test_fraction_below_monotone(self):
        h = Histogram.from_values([1, 2, 2, 3, 5, 8, 13, 21, 34], 4)
        fractions = [h.fraction_below(v) for v in range(0, 40)]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    def test_inclusive_at_least_exclusive(self):
        h = Histogram.from_values(list(range(50)), 5)
        for v in (0, 10, 25, 49):
            assert h.fraction_below(v, inclusive=True) >= h.fraction_below(v)

    def test_string_values_bucket_granular(self):
        h = Histogram.from_values([chr(ord("a") + i) for i in range(26)], 13)
        frac = h.fraction_below("n")
        assert 0.3 < frac < 0.7

    def test_too_few_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram([1])

    def test_skewed_distribution(self):
        values = [1] * 90 + list(range(2, 12))
        h = Histogram.from_values(values, 10)
        # 90% of values are 1, so fraction below 2 must be large.
        assert h.fraction_below(2) >= 0.8


class TestColumnStatistics:
    def _stats(self):
        return ColumnStatistics(
            name="x",
            num_distinct=100,
            null_fraction=0.0,
            min_value=0,
            max_value=99,
            histogram=Histogram.from_values(list(range(100)), 10),
        )

    def test_selectivity_eq_uniform(self):
        assert self._stats().selectivity_eq(5) == pytest.approx(0.01)

    def test_selectivity_eq_out_of_range(self):
        assert self._stats().selectivity_eq(500) == 0.0

    def test_selectivity_eq_null_uses_null_fraction(self):
        s = self._stats()
        s.null_fraction = 0.25
        assert s.selectivity_eq(None) == 0.25

    def test_selectivity_lt(self):
        assert self._stats().selectivity_cmp("<", 25) == pytest.approx(0.25, abs=0.06)

    def test_selectivity_ge_complements_lt(self):
        s = self._stats()
        lt = s.selectivity_cmp("<", 40)
        ge = s.selectivity_cmp(">=", 40)
        assert lt + ge == pytest.approx(1.0)

    def test_selectivity_ne(self):
        assert self._stats().selectivity_cmp("<>", 5) == pytest.approx(0.99)

    def test_selectivity_without_histogram_falls_back(self):
        s = ColumnStatistics(name="x", num_distinct=10, null_fraction=0.0)
        assert s.selectivity_cmp("<", 5) == pytest.approx(1.0 / 3.0)

    def test_selectivity_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            self._stats().selectivity_cmp("~", 5)

    def test_zero_distinct(self):
        s = ColumnStatistics(name="x", num_distinct=0, null_fraction=1.0)
        assert s.selectivity_eq(5) == 0.0


class TestAnalyze:
    def _table(self, rows):
        disk = SimulatedDisk(VirtualClock(), CostModelConfig())
        catalog = Catalog(disk, 8192)
        schema = Schema(
            [Column("k", INTEGER), Column("s", string(20)), Column("v", FLOAT)]
        )
        table = catalog.create_table("t", schema)
        table.heap.bulk_load(rows)
        return table

    def test_row_count_and_width(self):
        table = self._table([(i, "ab", 1.0) for i in range(50)])
        stats = analyze_table(table)
        assert stats.row_count == 50
        assert stats.avg_width == pytest.approx(table.heap.avg_tuple_width())

    def test_num_distinct_exact(self):
        table = self._table([(i % 7, "x", 0.0) for i in range(70)])
        stats = analyze_table(table)
        assert stats.columns["k"].num_distinct == 7

    def test_null_fraction(self):
        rows = [(i, None if i % 4 == 0 else "s", 1.0) for i in range(100)]
        stats = analyze_table(self._table(rows))
        assert stats.columns["s"].null_fraction == pytest.approx(0.25)

    def test_min_max(self):
        stats = analyze_table(self._table([(i, "x", float(i)) for i in range(10)]))
        assert stats.columns["k"].min_value == 0
        assert stats.columns["k"].max_value == 9

    def test_column_avg_width_strings(self):
        stats = analyze_table(self._table([(1, "abcd", 0.0)]))
        assert stats.columns["s"].avg_width == pytest.approx(5.0)  # len + 1

    def test_empty_table(self):
        stats = analyze_table(self._table([]))
        assert stats.row_count == 0
        assert stats.columns["k"].num_distinct == 0

    def test_total_bytes(self):
        table = self._table([(i, "ab", 1.0) for i in range(10)])
        stats = analyze_table(table)
        assert stats.total_bytes() == pytest.approx(table.heap.total_bytes)

    def test_attaches_to_table(self):
        table = self._table([(1, "a", 1.0)])
        assert table.statistics is None
        analyze_table(table)
        assert table.statistics is not None
