"""Unit tests: the repo-specific AST lint rules."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint import lint_file, lint_paths, lint_source

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def rules_of(findings) -> set[str]:
    return {f.rule for f in findings}


class TestWallClockRule:
    def test_flags_time_calls_in_core(self):
        findings = lint_source(
            "import time\n\ndef f():\n    return time.time()\n",
            "src/repro/core/x.py",
        )
        assert rules_of(findings) == {"REPRO001"}

    def test_flags_from_import(self):
        findings = lint_source(
            "from time import monotonic\n", "src/repro/executor/x.py"
        )
        assert rules_of(findings) == {"REPRO001"}

    def test_flags_datetime_now(self):
        findings = lint_source(
            "import datetime\n\ndef f():\n    return datetime.datetime.now()\n",
            "src/repro/core/x.py",
        )
        assert rules_of(findings) == {"REPRO001"}

    def test_other_packages_may_use_time(self):
        findings = lint_source(
            "import time\n\ndef f():\n    return time.time()\n",
            "src/repro/bench/x.py",
        )
        assert "REPRO001" not in rules_of(findings)

    def test_time_sleep_is_not_wall_clock(self):
        findings = lint_source(
            "import time\n\ndef f():\n    time.sleep(0)\n",
            "src/repro/core/x.py",
        )
        assert findings == []


class TestFloatEqualityRule:
    def test_flags_float_literal_equality(self):
        findings = lint_source("ok = x == 1.0\n", "src/repro/core/x.py")
        assert rules_of(findings) == {"REPRO002"}

    def test_flags_progress_name_inequality(self):
        findings = lint_source(
            "def f(fraction_done, y):\n    return fraction_done != y\n",
            "tools/x.py",
        )
        assert rules_of(findings) == {"REPRO002"}

    def test_integer_equality_is_fine(self):
        assert lint_source("ok = x == 1\n", "src/repro/core/x.py") == []

    def test_float_ordering_is_fine(self):
        assert lint_source("ok = x >= 1.0\n", "src/repro/core/x.py") == []


class TestMutableDefaultRule:
    def test_flags_list_dict_set_displays(self):
        findings = lint_source(
            "def f(a=[], b={}, c=set()):\n    return a, b, c\n", "x.py"
        )
        assert [f.rule for f in findings] == ["REPRO003"] * 3

    def test_flags_keyword_only_defaults(self):
        findings = lint_source("def f(*, a=[]):\n    return a\n", "x.py")
        assert rules_of(findings) == {"REPRO003"}

    def test_none_and_immutable_defaults_are_fine(self):
        assert lint_source(
            "def f(a=None, b=0, c=(), d='x'):\n    return a, b, c, d\n", "x.py"
        ) == []


class TestImportLayeringRule:
    def test_storage_must_not_import_executor(self):
        findings = lint_source(
            "from repro.executor.work import WorkTracker\n",
            "src/repro/storage/x.py",
        )
        assert rules_of(findings) == {"REPRO004"}

    def test_executor_must_not_import_core(self):
        findings = lint_source(
            "import repro.core.segments\n", "src/repro/executor/x.py"
        )
        assert rules_of(findings) == {"REPRO004"}

    def test_core_must_not_import_bench(self):
        findings = lint_source(
            "from repro import bench\n", "src/repro/core/x.py"
        )
        assert rules_of(findings) == {"REPRO004"}

    def test_downward_imports_allowed(self):
        assert lint_source(
            "from repro.executor.work import WorkTracker\n"
            "from repro.storage.page import Page\n",
            "src/repro/core/x.py",
        ) == []

    def test_unlayered_modules_exempt(self):
        assert lint_source(
            "from repro.core.segments import build_segments\n",
            "src/repro/analysis/x.py",
        ) == []


class TestAdhocLoggingRule:
    def test_flags_print_in_core(self):
        findings = lint_source(
            "def f(x):\n    print(x)\n", "src/repro/core/x.py"
        )
        assert rules_of(findings) == {"REPRO005"}
        assert "TraceBus" in findings[0].message

    def test_flags_logging_import_in_executor(self):
        findings = lint_source(
            "import logging\n", "src/repro/executor/x.py"
        )
        assert rules_of(findings) == {"REPRO005"}

    def test_flags_from_logging_import(self):
        findings = lint_source(
            "from logging import getLogger\n", "src/repro/core/x.py"
        )
        assert rules_of(findings) == {"REPRO005"}

    def test_flags_logging_calls(self):
        findings = lint_source(
            "def f():\n    logging.warning('x')\n", "src/repro/core/x.py"
        )
        assert rules_of(findings) == {"REPRO005"}

    def test_print_allowed_outside_the_engine(self):
        assert lint_source("print('ok')\n", "src/repro/bench/x.py") == []
        assert lint_source("print('ok')\n", "src/repro/obs/cli.py") == []

    def test_shipped_core_and_executor_are_silent(self):
        findings = lint_paths([REPO_SRC / "repro" / "core",
                               REPO_SRC / "repro" / "executor"])
        assert "REPRO005" not in rules_of(findings)


class TestBlanketExceptRule:
    def test_flags_bare_except_in_core(self):
        findings = lint_source(
            "try:\n    f()\nexcept:\n    pass\n", "src/repro/core/x.py"
        )
        assert rules_of(findings) == {"REPRO007"}

    def test_flags_except_exception(self):
        findings = lint_source(
            "try:\n    f()\nexcept Exception:\n    pass\n",
            "src/repro/executor/x.py",
        )
        assert rules_of(findings) == {"REPRO007"}

    def test_flags_except_base_exception_with_binding(self):
        findings = lint_source(
            "try:\n    f()\nexcept BaseException as exc:\n    raise\n",
            "src/repro/core/x.py",
        )
        assert rules_of(findings) == {"REPRO007"}

    def test_flags_blanket_inside_tuple(self):
        findings = lint_source(
            "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n",
            "src/repro/core/x.py",
        )
        assert rules_of(findings) == {"REPRO007"}

    def test_flags_dotted_builtins_exception(self):
        findings = lint_source(
            "try:\n    f()\nexcept builtins.Exception:\n    pass\n",
            "src/repro/core/x.py",
        )
        assert rules_of(findings) == {"REPRO007"}

    def test_taxonomy_types_are_fine(self):
        src = (
            "from repro.errors import TransientIOError, StorageError\n"
            "try:\n    f()\nexcept (TransientIOError, StorageError):\n"
            "    pass\n"
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_concrete_stdlib_types_are_fine(self):
        assert lint_source(
            "try:\n    f()\nexcept (KeyError, StopIteration):\n    pass\n",
            "src/repro/executor/x.py",
        ) == []

    def test_other_packages_may_catch_broadly(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert lint_source(src, "src/repro/fault/x.py") == []
        assert lint_source(src, "tools/x.py") == []

    def test_noqa_marks_a_deliberate_boundary(self):
        src = (
            "try:\n    f()\n"
            "except Exception as exc:  # noqa: REPRO007 - degrade boundary\n"
            "    fallback(exc)\n"
        )
        assert lint_source(src, "src/repro/core/x.py") == []

    def test_shipped_core_and_executor_obey_the_taxonomy(self):
        findings = lint_paths([REPO_SRC / "repro" / "core",
                               REPO_SRC / "repro" / "executor"])
        assert "REPRO007" not in rules_of(findings)


class TestDriver:
    def test_noqa_suppresses(self):
        assert lint_source(
            "ok = x == 1.0  # noqa: REPRO002\n", "src/repro/core/x.py"
        ) == []

    def test_bare_noqa_suppresses(self):
        assert lint_source("ok = x == 1.0  # noqa\n", "x.py") == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        findings = lint_source(
            "ok = x == 1.0  # noqa: REPRO001\n", "src/repro/core/x.py"
        )
        assert rules_of(findings) == {"REPRO002"}

    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def f(:\n", "x.py")
        assert rules_of(findings) == {"REPRO000"}

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "core"
        pkg.mkdir()
        (pkg / "bad.py").write_text("import time\nt = time.time()\n")
        (pkg / "good.py").write_text("x = 1\n")
        findings = lint_paths([tmp_path])
        assert rules_of(findings) == {"REPRO001"}

    def test_lint_file_reads_disk(self, tmp_path):
        target = tmp_path / "core"
        target.mkdir()
        bad = target / "bad.py"
        bad.write_text("def f(a=[]):\n    return a\n")
        assert rules_of(lint_file(bad)) == {"REPRO003"}


class TestUnseededRandomRule:
    def test_flags_module_level_call(self):
        findings = lint_source(
            "import random\n\ndef f():\n    return random.randint(0, 9)\n",
            "src/repro/workloads/x.py",
        )
        assert rules_of(findings) == {"REPRO008"}

    def test_flags_zero_arg_random(self):
        findings = lint_source(
            "import random\n\nrng = random.Random()\n",
            "src/repro/core/x.py",
        )
        assert "REPRO008" in rules_of(findings)

    def test_seeded_random_is_fine(self):
        findings = lint_source(
            "import random\n\nrng = random.Random(42)\n",
            "src/repro/core/x.py",
        )
        assert "REPRO008" not in rules_of(findings)

    def test_flags_system_random_even_seeded(self):
        findings = lint_source(
            "import random\n\nrng = random.SystemRandom(1)\n",
            "src/repro/obs/x.py",
        )
        assert rules_of(findings) == {"REPRO008"}

    def test_flags_from_import_calls(self):
        findings = lint_source(
            "from random import randint\n\ndef f():\n    return randint(0, 9)\n",
            "src/repro/planner/x.py",
        )
        assert rules_of(findings) == {"REPRO008"}

    def test_flags_global_seed(self):
        findings = lint_source(
            "import random\n\nrandom.seed(7)\n", "src/repro/obs/x.py"
        )
        assert rules_of(findings) == {"REPRO008"}

    def test_sim_and_fault_are_exempt(self):
        source = "import random\n\ndef f():\n    return random.random()\n"
        assert lint_source(source, "src/repro/sim/x.py") == []
        assert lint_source(source, "src/repro/fault/x.py") == []

    def test_tests_are_exempt(self):
        source = "import random\n\nv = random.random()\n"
        assert lint_source(source, "tests/unit/test_x.py") == []

    def test_unrelated_receiver_not_flagged(self):
        findings = lint_source(
            "def f(self):\n    return self.random.draw()\n",
            "src/repro/core/x.py",
        )
        assert "REPRO008" not in rules_of(findings)


class TestHotLoopDispatchRule:
    """REPRO009: no per-row dispatch overhead in allowlisted hot loops."""

    HOT_PATH = "src/repro/executor/runtime.py"

    def test_flags_isinstance_in_hot_loop(self):
        findings = lint_source(
            "def run_query(items):\n"
            "    for item in items:\n"
            "        if isinstance(item, tuple):\n"
            "            pass\n",
            self.HOT_PATH,
        )
        assert rules_of(findings) == {"REPRO009"}
        assert "identity" in findings[0].message

    def test_flags_deep_attribute_chain_call(self):
        findings = lint_source(
            "def run_query(task, items):\n"
            "    for item in items:\n"
            "        task.rows.append(item)\n",
            self.HOT_PATH,
        )
        assert rules_of(findings) == {"REPRO009"}
        assert "hoist" in findings[0].message

    def test_hoisted_bound_method_is_fine(self):
        findings = lint_source(
            "def run_query(task, items):\n"
            "    append = task.rows.append\n"
            "    for item in items:\n"
            "        append(item)\n",
            self.HOT_PATH,
        )
        assert findings == []

    def test_identity_dispatch_is_fine(self):
        findings = lint_source(
            "def run_query(items, PULSE, Batch):\n"
            "    n = 0\n"
            "    for item in items:\n"
            "        if item is PULSE:\n"
            "            continue\n"
            "        if type(item) is Batch:\n"
            "            n += len(item.rows())\n",
            self.HOT_PATH,
        )
        assert findings == []

    def test_outside_hot_loop_not_flagged(self):
        # Same function name, not an allowlisted file: unchecked.
        findings = lint_source(
            "def run_query(items):\n"
            "    for item in items:\n"
            "        if isinstance(item, tuple):\n"
            "            pass\n",
            "src/repro/obs/x.py",
        )
        assert findings == []

    def test_code_before_the_loop_not_flagged(self):
        findings = lint_source(
            "def run_query(task, items):\n"
            "    if isinstance(task, str):\n"
            "        raise TypeError\n"
            "    for item in items:\n"
            "        pass\n",
            self.HOT_PATH,
        )
        assert findings == []

    def test_scheduler_slice_loop_is_allowlisted(self):
        findings = lint_source(
            "def _run_slice(self, task):\n"
            "    while True:\n"
            "        task.rows.extend(task.gen.fetch())\n",
            "src/repro/sched/scheduler.py",
        )
        assert rules_of(findings) == {"REPRO009"}

    def test_noqa_silences(self):
        findings = lint_source(
            "def run_query(items):\n"
            "    for item in items:\n"
            "        if isinstance(item, tuple):  # noqa: REPRO009\n"
            "            pass\n",
            self.HOT_PATH,
        )
        assert findings == []


class TestLegacyRefineImportRule:
    def test_flags_plain_import(self):
        findings = lint_source(
            "import repro.core.refine\n", "src/repro/core/indicator.py"
        )
        assert rules_of(findings) == {"REPRO010"}

    def test_flags_from_import(self):
        findings = lint_source(
            "from repro.core.refine import ProgressEstimator\n",
            "src/repro/obs/audit.py",
        )
        assert rules_of(findings) == {"REPRO010"}

    def test_flags_submodule_from_import(self):
        findings = lint_source(
            "from repro.core import refine\n", "src/repro/sched/x.py"
        )
        assert rules_of(findings) == {"REPRO010"}

    def test_estimators_package_is_the_blessed_path(self):
        assert lint_source(
            "from repro.estimators import make_estimator\n"
            "from repro.estimators.base import EstimateSnapshot\n",
            "src/repro/core/indicator.py",
        ) == []

    def test_shim_module_itself_exempt(self):
        assert lint_source(
            "from repro.estimators.refinement import RefinementEstimator\n"
            "import repro.core.refine\n",
            "src/repro/core/refine.py",
        ) == []

    def test_tests_exempt(self):
        assert lint_source(
            "from repro.core.refine import ProgressEstimator\n",
            "tests/unit/test_estimators.py",
        ) == []


class TestRawSchedulerRule:
    def test_flags_direct_construction(self):
        findings = lint_source(
            "from repro.sched.scheduler import CooperativeScheduler\n"
            "sched = CooperativeScheduler(db)\n",
            "src/repro/bench/x.py",
        )
        assert rules_of(findings) == {"REPRO011"}

    def test_flags_attribute_construction(self):
        findings = lint_source(
            "import repro.sched.scheduler as scheduler\n"
            "sched = scheduler.CooperativeScheduler(db, policy='fifo')\n",
            "tools/x.py",
        )
        assert rules_of(findings) == {"REPRO011"}

    def test_service_package_may_construct(self):
        assert lint_source(
            "sched = CooperativeScheduler(db)\n",
            "src/repro/service/service.py",
        ) == []

    def test_sched_package_may_construct(self):
        assert lint_source(
            "sched = CooperativeScheduler(db)\n",
            "src/repro/sched/demo.py",
        ) == []

    def test_tests_exempt(self):
        assert lint_source(
            "sched = CooperativeScheduler(db)\n",
            "tests/unit/test_sched_scheduler.py",
        ) == []

    def test_service_call_is_the_blessed_path(self):
        assert lint_source(
            "service = db.service()\nsched = service.scheduler\n",
            "src/repro/bench/x.py",
        ) == []


def test_shipped_tree_is_clean():
    """The lint pass lands green on the repo's own source tree."""
    assert lint_paths([REPO_SRC]) == []
