"""Unit tests for EXPLAIN rendering and configuration plumbing."""

import pytest

from repro.config import (
    CostModelConfig,
    PlannerConfig,
    ProgressConfig,
    SystemConfig,
)
from repro.core.segments import build_segments
from repro.estimators import estimator_for_refine_mode
from repro.planner.explain import explain
from repro.workloads import queries, tpcr


class TestExplain:
    def test_scan_line_includes_estimates(self, tiny_tpcr):
        plan = tiny_tpcr.prepare("select custkey from customer")
        text = explain(plan.root)
        assert "SeqScan(customer)" in text
        assert "rows=" in text and "width=" in text

    def test_filters_rendered(self, tiny_tpcr):
        plan = tiny_tpcr.prepare("select custkey from customer where nationkey < 5")
        assert "filter: (c" in explain(plan.root) or "filter:" in explain(plan.root)

    def test_join_keys_rendered(self, tiny_tpcr):
        plan = tiny_tpcr.prepare(queries.Q2)
        text = explain(plan.root)
        assert "HashJoin" in text
        assert "on" in text

    def test_segments_shown_after_segmentation(self, tiny_tpcr):
        plan = tiny_tpcr.prepare(queries.Q2)
        build_segments(plan.root)
        text = explain(plan.root)
        assert "[segment 0]" in text

    def test_indentation_reflects_tree_depth(self, tiny_tpcr):
        plan = tiny_tpcr.prepare(queries.Q2)
        lines = explain(plan.root).splitlines()
        depths = [len(line) - len(line.lstrip()) for line in lines]
        assert depths[0] == 0
        assert max(depths) >= 4

    def test_aggregate_and_distinct_labels(self, tiny_tpcr):
        plan = tiny_tpcr.prepare(
            "select distinct nationkey from customer"
        )
        assert "Distinct" in explain(plan.root)
        plan = tiny_tpcr.prepare(
            "select nationkey, count(*) from customer group by nationkey"
        )
        assert "HashAggregate" in explain(plan.root)


class TestConfig:
    def test_with_planner_replaces_only_planner(self):
        config = SystemConfig()
        updated = config.with_planner(enable_hashjoin=False)
        assert updated.planner.enable_hashjoin is False
        assert config.planner.enable_hashjoin is True
        assert updated.cost is config.cost

    def test_with_progress(self):
        config = SystemConfig().with_progress(speed_window=42.0)
        assert config.progress.speed_window == 42.0

    def test_with_cost(self):
        config = SystemConfig().with_cost(seq_page_read=1.0)
        assert config.cost.seq_page_read == 1.0

    def test_configs_frozen(self):
        config = SystemConfig()
        with pytest.raises(Exception):
            config.page_size = 1

    def test_default_selectivity_is_one_third(self):
        # The constant the paper's Figures 9/13/17/18 hinge on.
        assert PlannerConfig().default_selectivity == pytest.approx(1.0 / 3.0)

    def test_progress_defaults_match_paper(self):
        progress = ProgressConfig()
        assert progress.update_interval == 10.0  # Section 5 pacing
        assert progress.speed_window == 10.0  # Section 4.6's T

    def test_cost_ratios_sane(self):
        cost = CostModelConfig()
        assert cost.random_page_read > cost.seq_page_read
        assert cost.cpu_tuple < cost.seq_page_read

    def test_refine_mode_validated(self):
        config = SystemConfig().with_progress(refine_mode="bogus")
        db = tpcr.build_database(scale=0.001, subset_rows=20, config=config)
        with pytest.raises(ValueError):
            db.execute_with_progress("select * from customer")


class TestEstimatorConfig:
    def test_refine_mode_maps_to_estimators(self):
        assert estimator_for_refine_mode("paper") == "paper"
        assert estimator_for_refine_mode("optimizer") == "tgn"
        assert estimator_for_refine_mode("extrapolate") == "dne"

    def test_estimator_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            estimator_for_refine_mode("nope")
