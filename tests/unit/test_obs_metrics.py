"""Unit tests: the metrics registry, collector, and span accounting."""

from __future__ import annotations

import pytest

from repro.obs.events import (
    BufferAccess,
    PageRead,
    PageWritten,
    QueryFinished,
    QueryStarted,
    ReportEmitted,
    SegmentFinished,
    SegmentMeta,
    SegmentStarted,
    SpeedEstimated,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    compute_spans,
    render_spans,
)


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_histogram_buckets(self):
        h = Histogram("h", (10.0, 20.0))
        for v in (5, 10, 15, 25):
            h.observe(v)
        # bisect_left: a value equal to a bound counts in the lower bucket
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.mean() == pytest.approx(13.75)

    def test_histogram_bounds_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))

    def test_quantile_interpolates_within_buckets(self):
        h = Histogram("h", (10.0, 20.0))
        for v in (2, 4, 6, 8, 12, 14, 16, 18, 22, 24):
            h.observe(v)
        # 4 obs in [0,10), 4 in [10,20), 2 overflow.  p50 sits one
        # observation into the second bucket: 10 + (5-4)/4 * 10 = 12.5.
        assert h.quantile(0.5) == pytest.approx(12.5)
        # p25 interpolates the first bucket from 0: 0 + 2.5/4 * 10.
        assert h.quantile(0.25) == pytest.approx(6.25)

    def test_quantile_overflow_bucket_clamps_to_last_bound(self):
        h = Histogram("h", (10.0,))
        for v in (50, 60, 70):
            h.observe(v)
        # The open-ended bucket has no upper edge: clamp to the bound.
        assert h.quantile(0.99) == pytest.approx(10.0)

    def test_quantile_edge_cases(self):
        h = Histogram("h", (10.0,))
        assert h.quantile(0.5) is None  # empty histogram
        h.observe(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_render_includes_quantile_summary_lines(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        out = reg.render()
        assert "lat_count 3" in out
        for label in ("lat_p50", "lat_p95", "lat_p99"):
            assert label in out, label

    def test_registry_is_idempotent_per_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", (1.0,)) is reg.histogram("h", (1.0,))

    def test_render_flat_text(self):
        reg = MetricsRegistry()
        reg.counter("io.reads").inc(3)
        reg.gauge("speed").set(12.5)
        out = reg.render()
        assert "io.reads 3" in out
        assert "speed 12.5" in out


class TestCollector:
    def test_storage_events_counted(self):
        events = [
            PageRead(t=0.0, file_id=1, page_no=0, sequential=True),
            PageRead(t=0.1, file_id=1, page_no=9, sequential=False),
            PageWritten(t=0.2, file_id=2, page_no=0),
            BufferAccess(t=0.3, file_id=1, page_no=0, hit=True),
            BufferAccess(t=0.4, file_id=1, page_no=1, hit=False),
        ]
        reg = MetricsCollector().collect(events)
        assert reg.counter("io.reads.seq").value == 1
        assert reg.counter("io.reads.random").value == 1
        assert reg.counter("io.writes").value == 1
        assert reg.counter("buffer.hits").value == 1
        assert reg.counter("buffer.misses").value == 1

    def test_progress_and_speed_aggregation(self):
        events = [
            SpeedEstimated(t=1.0, estimator="window", pages_per_sec=None),
            SpeedEstimated(t=2.0, estimator="window", pages_per_sec=4.0),
            ReportEmitted(
                t=10.0, elapsed=10.0, done_pages=5.0, est_cost_pages=50.0,
                fraction_done=0.1, speed_pages_per_sec=4.0,
                est_remaining_seconds=11.25, current_segment=0, finished=False,
            ),
            QueryFinished(t=20.0, elapsed=20.0, done_pages=50.0,
                          actual_cost_pages=50.0),
        ]
        reg = MetricsCollector().collect(events)
        assert reg.counter("reports.emitted").value == 1
        assert reg.gauge("speed.pages_per_sec").value == 4.0
        assert reg.gauge("progress.fraction_done").value == 0.1
        assert reg.gauge("query.elapsed_seconds").value == 20.0
        # The None speed sample is not observed in the distribution.
        assert reg.histogram("speed.distribution", ()).count == 1


def _query_started_two_segments() -> QueryStarted:
    """Segment 1 consumes segment 0's output (child link)."""
    return QueryStarted(
        t=0.0, label="q", num_segments=2, initial_cost_pages=20.0,
        segments=(
            SegmentMeta(id=0, label="sort", final=False,
                        inputs=(("base", "t", True, None),),
                        est_output_rows=10.0, est_cost_bytes=81920.0),
            SegmentMeta(id=1, label="output", final=True,
                        inputs=(("child", "sort", True, 0),),
                        est_output_rows=10.0, est_cost_bytes=81920.0),
        ),
    )


class TestSpans:
    def test_self_time_excludes_child_overlap(self):
        events = [
            _query_started_two_segments(),
            SegmentStarted(t=1.0, segment_id=0),
            SegmentStarted(t=2.0, segment_id=1),
            SegmentFinished(t=6.0, segment_id=0, done_bytes=8192.0,
                            output_rows=5),
            SegmentFinished(t=10.0, segment_id=1, done_bytes=16384.0,
                            output_rows=5),
        ]
        spans = compute_spans(events)
        parent = spans[1]
        assert parent.duration == pytest.approx(8.0)      # 2 .. 10
        assert parent.child_seconds == pytest.approx(4.0)  # overlap 2 .. 6
        assert parent.self_seconds == pytest.approx(4.0)
        assert parent.subtree_bytes == pytest.approx(16384.0 + 8192.0)
        child = spans[0]
        assert child.self_seconds == pytest.approx(child.duration)

    def test_unstarted_segment_renders_as_dash(self):
        spans = compute_spans([_query_started_two_segments()])
        table = render_spans(spans, page_size=8192)
        assert "sort" in table and "output" in table
        assert " - " in table.replace("-" * 10, "")

    def test_render_spans_page_units(self):
        events = [
            _query_started_two_segments(),
            SegmentStarted(t=0.0, segment_id=0),
            SegmentFinished(t=1.0, segment_id=0, done_bytes=81920.0,
                            output_rows=1),
        ]
        table = render_spans(compute_spans(events), page_size=8192)
        assert "10.0" in table  # 81920 bytes / 8192 = 10 U
