"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.parser import parse_select


class TestSelectList:
    def test_star(self):
        stmt = parse_select("select * from t")
        assert stmt.select_items[0].expr == Star()

    def test_qualified_star(self):
        stmt = parse_select("select t.* from t")
        assert stmt.select_items[0].expr == Star(qualifier="t")

    def test_columns_and_aliases(self):
        stmt = parse_select("select a, b as bee, c cee from t")
        items = stmt.select_items
        assert items[0].alias is None
        assert items[1].alias == "bee"
        assert items[2].alias == "cee"

    def test_expression_item(self):
        stmt = parse_select("select a + 1 from t")
        expr = stmt.select_items[0].expr
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"

    def test_function_call(self):
        stmt = parse_select("select absolute(x) from t")
        expr = stmt.select_items[0].expr
        assert expr == FunctionCall("absolute", (ColumnRef("x"),))


class TestFromClause:
    def test_single_table(self):
        stmt = parse_select("select * from lineitem")
        assert stmt.from_tables[0].name == "lineitem"
        assert stmt.from_tables[0].binding_name == "lineitem"

    def test_aliases(self):
        stmt = parse_select("select * from customer c, orders as o")
        assert stmt.from_tables[0].alias == "c"
        assert stmt.from_tables[1].alias == "o"

    def test_self_join_distinct_aliases(self):
        stmt = parse_select("select * from orders o1, orders o2")
        assert [t.binding_name for t in stmt.from_tables] == ["o1", "o2"]


class TestWhereClause:
    def test_simple_comparison(self):
        stmt = parse_select("select * from t where a = 5")
        assert stmt.where == BinaryOp("=", ColumnRef("a"), Literal(5))

    def test_qualified_columns(self):
        stmt = parse_select("select * from t a, u b where a.x = b.y")
        where = stmt.where
        assert where.left == ColumnRef("x", qualifier="a")
        assert where.right == ColumnRef("y", qualifier="b")

    def test_and_precedence_over_or(self):
        stmt = parse_select("select * from t where a = 1 or b = 2 and c = 3")
        assert stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_parentheses_override(self):
        stmt = parse_select("select * from t where (a = 1 or b = 2) and c = 3")
        assert stmt.where.op == "and"
        assert stmt.where.left.op == "or"

    def test_not(self):
        stmt = parse_select("select * from t where not a = 1")
        assert isinstance(stmt.where, UnaryOp)
        assert stmt.where.op == "not"

    def test_arithmetic_precedence(self):
        stmt = parse_select("select * from t where a > 1 + 2 * 3")
        right = stmt.where.right
        assert right.op == "+"
        assert right.right.op == "*"

    def test_unary_minus(self):
        stmt = parse_select("select * from t where a > -5")
        right = stmt.where.right
        assert isinstance(right, UnaryOp)
        assert right.op == "-"

    def test_not_equal(self):
        stmt = parse_select("select * from t where a <> b")
        assert stmt.where.op == "<>"

    def test_null_true_false_literals(self):
        stmt = parse_select("select * from t where a = null or b = true")
        assert stmt.where.left.right == Literal(None)
        assert stmt.where.right.right == Literal(True)


class TestOrderLimit:
    def test_order_by_defaults_asc(self):
        stmt = parse_select("select * from t order by a")
        assert stmt.order_by[0].ascending is True

    def test_order_by_desc(self):
        stmt = parse_select("select * from t order by a desc, b asc")
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True

    def test_limit(self):
        stmt = parse_select("select * from t limit 10")
        assert stmt.limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_select("select * from t limit 1.5")


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "select from t",
            "select *",
            "select * from",
            "select * from t where",
            "select * from t order a",
            "select * from t limit 5 extra",
            "select a, from t",
            "select * where a = 1",
        ],
    )
    def test_malformed_rejected(self, sql):
        with pytest.raises(ParseError):
            parse_select(sql)

    def test_paper_queries_parse(self):
        from repro.workloads.queries import PAPER_QUERIES

        for sql in PAPER_QUERIES.values():
            parse_select(sql)
