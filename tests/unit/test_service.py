"""Unit tests: the multi-tenant query service (admission, shedding,
fair share, tenant accounting)."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import AdmissionRejectedError, ProgressError, QueryShedError
from repro.sched.task import FINISHED, SHED, TIMED_OUT
from repro.service import ADMISSION_REJECTED, ADMITTED, QUEUED
from repro.workloads import queries, tpcr


def _db(**service_kwargs):
    config = SystemConfig(work_mem_pages=8, buffer_pool_pages=24)
    if service_kwargs:
        config = config.with_service(**service_kwargs)
    return tpcr.build_database(scale=0.002, subset_rows=60, config=config)


class TestAdmission:
    def test_permissive_defaults_admit_immediately(self):
        db = _db()
        service = db.service()
        handle = service.submit(queries.Q1, name="q")
        assert handle.outcome == ADMITTED
        assert handle.task is not None
        assert service.inflight == 1
        assert handle.result().row_count > 0
        assert handle.state == FINISHED
        assert service.inflight == 0
        assert service.counters["admitted"] == 1
        assert service.counters["finished"] == 1

    def test_saturation_queues_then_promotes(self):
        db = _db(max_inflight=1)
        service = db.service()
        first = service.submit(queries.Q1, name="a")
        second = service.submit(queries.Q1, name="b")
        assert first.outcome == ADMITTED
        assert second.outcome == QUEUED
        assert second.task is None
        assert len(service.queue) == 1
        # Draining the first frees capacity; the retire hook promotes
        # the queued submission without any extra calls.
        first.result()
        assert second.outcome == ADMITTED
        assert second.task is not None
        assert second.result().row_count > 0
        assert service.counters["queued"] == 1

    def test_full_admission_queue_rejects(self):
        db = _db(max_inflight=1, admission_queue_limit=1)
        service = db.service()
        service.submit(queries.Q1, name="a")
        service.submit(queries.Q1, name="b")
        third = service.submit(queries.Q1, name="c")
        assert third.outcome == ADMISSION_REJECTED
        assert third.task is None
        assert third.done
        assert third.state == ADMISSION_REJECTED
        with pytest.raises(AdmissionRejectedError, match="queue full"):
            third.result()
        assert service.counters["rejected"] == 1

    def test_tenant_budget_throttles_second_query(self):
        db = _db()
        service = db.service()
        # Budget far below any query's predicted cost: the first query
        # admits anyway (nothing else in flight — queueing it could
        # never succeed), the second throttles.
        service.register_tenant("acme", cost_budget_pages=1.0)
        first = service.submit(queries.Q1, name="a", tenant="acme")
        second = service.submit(queries.Q1, name="b", tenant="acme")
        assert first.outcome == ADMITTED
        assert second.outcome == QUEUED
        # Another tenant is not affected by acme's budget.
        other = service.submit(queries.Q1, name="c", tenant="other")
        assert other.outcome == ADMITTED
        service.run()
        assert first.state == FINISHED
        assert second.state == FINISHED  # promoted once a's cost settled
        acme = service.tenants.get("acme")
        assert acme.inflight == 0
        assert acme.inflight_cost_pages == 0.0

    def test_admission_events_on_service_trace(self):
        db = _db(admission_queue_limit=1)
        service = db.service(trace=True)
        service.register_tenant("acme", cost_budget_pages=1.0)
        service.submit(queries.Q1, name="a", tenant="acme")
        service.submit(queries.Q1, name="b", tenant="acme")
        service.submit(queries.Q1, name="c", tenant="acme")
        service.run()
        counts = service.trace.counts()
        # a admitted; b queued (tenant budget) then promoted; c rejected.
        assert counts["admission_decided"] == 4
        assert counts["tenant_throttled"] == 1
        outcomes = [e.outcome for e in service.trace.of_kind("admission_decided")]
        assert outcomes == ["admitted", "queued", "rejected", "admitted"]

    def test_duplicate_name_rejected(self):
        service = _db().service()
        service.submit(queries.Q1, name="q")
        with pytest.raises(ProgressError, match="already submitted"):
            service.submit(queries.Q1, name="q")

    def test_cancel_queued_submission(self):
        db = _db(max_inflight=1)
        service = db.service()
        first = service.submit(queries.Q1, name="a")
        second = service.submit(queries.Q1, name="b")
        second.cancel()
        assert second.done
        first.result()
        service.run()
        assert second.task is None  # never admitted
        with pytest.raises(ProgressError, match="cancelled"):
            second.result()


class TestShedding:
    def _shedding_db(self):
        return _db(
            shedding=True,
            policy_interval=0.5,
            deprioritize_after=1,
            shed_after=3,
        )

    def test_query_predicted_to_miss_is_shed_before_its_deadline(self):
        db = self._shedding_db()
        service = db.service()
        # Q2 needs tens of virtual seconds at this scale; the policy
        # should evict it well before the watchdog would.
        deadline = db.clock.now + 10.0
        handle = service.submit(queries.Q2, name="doomed", deadline=deadline)
        with pytest.raises(QueryShedError, match="predicted to miss"):
            handle.result()
        task = handle.task
        assert task.state == SHED
        assert task.finished_at < deadline  # evicted early, not at expiry
        assert db.buffer_pool.pinned_count == 0
        assert db.disk.temp_file_count() == 0
        assert service.counters["shed"] == 1
        assert service.tenants.get("default").shed == 1

    def test_shedding_disabled_same_query_times_out_instead(self):
        db = _db(shedding=False)
        service = db.service()
        deadline = db.clock.now + 10.0
        handle = service.submit(queries.Q2, name="doomed", deadline=deadline)
        with pytest.raises(Exception) as exc_info:
            handle.result()
        assert not isinstance(exc_info.value, QueryShedError)
        assert handle.task.state == TIMED_OUT
        assert handle.task.finished_at >= deadline

    def test_no_deadline_means_no_shedding(self):
        db = self._shedding_db()
        service = db.service()
        handle = service.submit(queries.Q2, name="free", keep_rows=False)
        assert handle.result().row_count > 0
        assert handle.state == FINISHED

    def test_unmonitored_query_is_never_shed(self):
        # No indicator -> no estimate -> no action: the watchdog, not
        # the shedding policy, ends an unmonitored doomed query.
        db = self._shedding_db()
        service = db.service()
        deadline = db.clock.now + 5.0
        handle = service.submit(
            queries.Q2, name="blind", monitor=False, deadline=deadline
        )
        with pytest.raises(Exception):
            handle.result()
        assert handle.task.state == TIMED_OUT

    def test_makeable_deadline_is_not_shed(self):
        db = self._shedding_db()
        service = db.service()
        handle = service.submit(
            queries.Q1, name="fine", deadline=db.clock.now + 1e6
        )
        assert handle.result().row_count > 0
        assert handle.state == FINISHED


class TestFairShare:
    def test_weighted_tenants_split_u_by_weight(self):
        db = _db()
        service = db.service(policy="weighted_fair")
        service.register_tenant("gold", weight=3.0)
        service.register_tenant("bronze", weight=1.0)
        g = service.submit(queries.Q2, name="g", tenant="gold", keep_rows=False)
        b = service.submit(queries.Q2, name="b", tenant="bronze", keep_rows=False)
        # Identical queries: while both are backlogged, U splits 3:1, so
        # gold must finish first — at that instant it has been granted
        # ~3x bronze's U.
        while not g.done and not b.done:
            assert service.step() is not None
        gold = service.tenants.get("gold")
        bronze = service.tenants.get("bronze")
        assert g.done and not b.done
        assert gold.consumed_pages > 0 and bronze.consumed_pages > 0
        ratio = gold.consumed_pages / bronze.consumed_pages
        assert 2.0 < ratio < 4.5  # converging on 3:1 while backlogged

    def test_default_policy_charges_tenants(self):
        db = _db()
        service = db.service()
        service.submit(queries.Q1, name="q", tenant="acme", keep_rows=False)
        service.run()
        assert service.tenants.get("acme").consumed_pages > 0


class TestSessionFacade:
    def test_session_blocks_until_admitted_under_limits(self):
        db = _db(max_inflight=1)
        session = db.connect()
        a = session.submit(queries.Q1, name="a", keep_rows=False)
        # Under max_inflight=1 this submit pumps the workload until the
        # service admits it — a finishes in the process.
        b = session.submit(queries.Q1, name="b", keep_rows=False)
        assert a.done
        assert b.result().row_count > 0

    def test_session_surfaces_rejection(self):
        db = _db(max_inflight=1, admission_queue_limit=0)
        session = db.connect()
        session.submit(queries.Q1, name="a")
        with pytest.raises(AdmissionRejectedError):
            session.submit(queries.Q1, name="b")

    def test_session_service_accounting_settles(self):
        db = _db()
        session = db.connect()
        session.submit(queries.Q1, name="a", keep_rows=False)
        session.submit(queries.Q3, name="b", keep_rows=False)
        session.run()
        assert session.service.inflight == 0
        tenant = session.service.tenants.get("default")
        assert tenant.inflight == 0
        assert tenant.inflight_cost_pages == 0.0
        assert session.service.counters["finished"] == 2
