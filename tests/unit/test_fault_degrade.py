"""Unit tests: the indicator's degrade-don't-die boundary.

The acceptance bar: an exception forced inside the refinement machinery
degrades the *indicator* (trace event, fallback estimate) while the
*query* completes and returns correct results.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.workloads import queries, tpcr


def _boom() -> None:
    raise ReproError("synthetic refinement failure")


def _db():
    return tpcr.build_database(scale=0.002, subset_rows=60)


class TestRefinementDegrade:
    def test_broken_refinement_degrades_but_query_completes(self):
        db = _db()
        baseline = db.connect().submit(queries.Q2, trace=False).result().rows

        db.restart()
        session = db.connect()
        handle = session.submit(queries.Q2, name="q", trace=True)
        # Let some honest reports accumulate, then break the estimator.
        for _ in range(6):
            session.step()
        indicator = handle.task.indicator
        assert indicator is not None
        indicator.estimator.snapshot = _boom

        result = handle.result()
        assert result.rows == baseline  # the query never noticed

        assert indicator.degraded_count > 0
        trace = handle.trace()
        assert any(True for _ in trace.of_kind("degraded"))
        assert trace.counts().get("query_finished") == 1

    def test_fallback_serves_last_good_report(self):
        db = _db()
        session = db.connect()
        handle = session.submit(queries.Q2, name="q", trace=True)
        for _ in range(6):
            session.step()
        indicator = handle.task.indicator
        good = handle.progress()
        assert good is not None and not good.degraded

        indicator.estimator.snapshot = _boom
        degraded = handle.progress()
        assert degraded.degraded
        assert degraded.done_pages == pytest.approx(good.done_pages)
        assert degraded.est_cost_pages == pytest.approx(good.est_cost_pages)
        handle.result()

    def test_fallback_before_first_report_uses_optimizer_estimate(self):
        db = _db()
        session = db.connect()
        handle = session.submit(queries.Q1, name="q", trace=True)
        indicator = handle.task.indicator
        indicator.estimator.snapshot = _boom

        report = handle.progress()  # no good report exists yet
        assert report.degraded
        assert report.est_cost_pages == pytest.approx(
            indicator.initial_cost_pages
        )
        assert report.speed_pages_per_sec is None

    def test_degrade_event_carries_phase_and_error(self):
        db = _db()
        session = db.connect()
        handle = session.submit(queries.Q1, name="q", trace=True)
        indicator = handle.task.indicator
        indicator.estimator.snapshot = _boom
        handle.result()
        events = list(handle.trace().of_kind("degraded"))
        assert events
        assert {e.phase for e in events} <= {"refine", "report"}
        assert all("synthetic refinement failure" in e.error for e in events)

    def test_broken_on_report_callback_does_not_kill_query(self):
        calls = []

        def bad_callback(report):
            calls.append(report)
            raise RuntimeError("user callback bug")

        db = _db()
        handle = db.connect().submit(
            queries.Q2, name="q", trace=True, on_report=bad_callback
        )
        result = handle.result()
        assert result.row_count > 0
        assert calls  # the callback did fire (and raise)
        indicator = handle.task.indicator
        assert indicator.degraded_count >= len(calls)
        assert any(
            e.phase == "on_report"
            for e in handle.trace().of_kind("degraded")
        )

    def test_broken_speed_sampler_is_absorbed(self):
        db = _db()
        session = db.connect()
        handle = session.submit(queries.Q1, name="q", trace=True)
        session.step()
        indicator = handle.task.indicator

        def bad_record(t, pages):
            raise ReproError("speed sampler bug")

        indicator._speed.record = bad_record
        result = handle.result()
        assert result.row_count > 0
        assert indicator.degraded_count > 0
        assert any(
            e.phase == "speed" for e in handle.trace().of_kind("degraded")
        )

    def test_degraded_reports_keep_progress_monotone(self):
        db = _db()
        session = db.connect()
        handle = session.submit(queries.Q2, name="q", trace=True)
        for _ in range(4):
            session.step()
        handle.task.indicator.estimator.snapshot = _boom
        handle.result()
        log = handle.log
        pages = [r.done_pages for r in log.reports]
        assert all(b >= a - 1e-9 for a, b in zip(pages, pages[1:]))
        assert any(r.degraded for r in log.reports)
