"""Unit tests for baselines, triggers, load management and rollback."""

import pytest

from repro.core.baseline import (
    OptimizerBaseline,
    StepBaseline,
    actual_remaining_series,
    closer_to_actual,
    optimizer_remaining_series,
)
from repro.core.loadmgmt import (
    MonitoredQuery,
    choose_victims,
    least_progress,
    longest_remaining,
    most_remaining_work,
    nearly_done,
)
from repro.core.report import ProgressReport
from repro.core.rollback import RollbackMonitor
from repro.core.triggers import (
    ProgressTrigger,
    TriggerSet,
    overrun_condition,
    slow_progress_condition,
    stalled_condition,
)
from repro.errors import ProgressError
from repro.sim.clock import VirtualClock
from repro.workloads import queries


def report(elapsed=100.0, fraction=0.5, speed=10.0, remaining=100.0):
    return ProgressReport(
        time=elapsed,
        elapsed=elapsed,
        done_pages=fraction * 1000,
        est_cost_pages=1000.0,
        fraction_done=fraction,
        speed_pages_per_sec=speed,
        est_remaining_seconds=remaining,
        current_segment=0,
    )


class TestOptimizerBaseline:
    def test_remaining_decreases_linearly(self, tiny_tpcr):
        monitored = tiny_tpcr.execute_with_progress(queries.Q1)
        baseline = OptimizerBaseline(monitored.indicator.segments, tiny_tpcr.config)
        assert baseline.remaining(0.0) == pytest.approx(baseline.est_total_seconds)
        assert baseline.remaining(baseline.est_total_seconds / 2) == pytest.approx(
            baseline.est_total_seconds / 2
        )

    def test_remaining_floors_at_zero(self, tiny_tpcr):
        monitored = tiny_tpcr.execute_with_progress(queries.Q1)
        baseline = OptimizerBaseline(monitored.indicator.segments, tiny_tpcr.config)
        assert baseline.remaining(baseline.est_total_seconds * 10) == 0.0

    def test_series_helpers(self, tiny_tpcr):
        monitored = tiny_tpcr.execute_with_progress(queries.Q1)
        baseline = OptimizerBaseline(monitored.indicator.segments, tiny_tpcr.config)
        points = [0.0, 10.0, 20.0]
        opt = optimizer_remaining_series(baseline, points)
        act = actual_remaining_series(30.0, points)
        assert [t for t, _ in opt] == points
        assert act[-1][1] == pytest.approx(10.0)

    def test_closer_to_actual(self):
        assert closer_to_actual(95.0, 50.0, 100.0)
        assert not closer_to_actual(10.0, 90.0, 100.0)
        assert not closer_to_actual(None, 90.0, 100.0)


class TestStepBaseline:
    def test_steps_advance_with_segments(self, tiny_tpcr):
        monitored = tiny_tpcr.execute_with_progress(queries.Q2)
        step = StepBaseline(
            monitored.indicator.segments, monitored.indicator.tracker
        )
        assert step.current_step() == step.total_steps + 1
        assert "completed" in step.describe()


class TestTriggers:
    def test_slow_progress_fires(self):
        fired = []
        trigger = ProgressTrigger(
            "slow",
            slow_progress_condition(max_fraction=0.1, after_seconds=3600),
            fired.append,
        )
        assert not trigger.observe(report(elapsed=100.0, fraction=0.05))
        assert trigger.observe(report(elapsed=4000.0, fraction=0.05))
        assert fired

    def test_once_semantics(self):
        trigger = ProgressTrigger(
            "slow",
            slow_progress_condition(0.5, 0.0),
            lambda r: None,
            once=True,
        )
        assert trigger.observe(report(fraction=0.1))
        assert not trigger.observe(report(fraction=0.1))
        assert trigger.fired == 1

    def test_repeating_trigger(self):
        trigger = ProgressTrigger(
            "slow", slow_progress_condition(0.5, 0.0), lambda r: None, once=False
        )
        trigger.observe(report(fraction=0.1))
        trigger.observe(report(fraction=0.1))
        assert trigger.fired == 2

    def test_stalled_condition(self):
        cond = stalled_condition(min_speed_pages=5.0, after_seconds=10.0)
        assert cond(report(elapsed=20.0, speed=1.0))
        assert not cond(report(elapsed=20.0, speed=50.0))
        assert not cond(report(elapsed=5.0, speed=1.0))

    def test_overrun_condition(self):
        cond = overrun_condition(factor=3.0)
        assert cond(report(elapsed=10.0, remaining=100.0))
        assert not cond(report(elapsed=100.0, remaining=100.0))

    def test_trigger_set_dispatches(self):
        fired = []
        triggers = TriggerSet()
        triggers.add(
            ProgressTrigger("a", slow_progress_condition(0.9, 0.0), lambda r: fired.append("a"))
        )
        triggers.add(
            ProgressTrigger("b", stalled_condition(100.0, 0.0), lambda r: fired.append("b"))
        )
        triggers(report(fraction=0.1, speed=1.0))
        assert fired == ["a", "b"]


class TestLoadManagement:
    def _pool(self):
        return [
            MonitoredQuery("fast", report(remaining=10.0, fraction=0.9)),
            MonitoredQuery("slow", report(remaining=5000.0, fraction=0.1)),
            MonitoredQuery("mid", report(remaining=300.0, fraction=0.5)),
        ]

    def test_longest_remaining_policy(self):
        victims = choose_victims(self._pool(), 1, policy=longest_remaining)
        assert victims[0].name == "slow"

    def test_least_progress_policy(self):
        victims = choose_victims(self._pool(), 2, policy=least_progress)
        assert [v.name for v in victims] == ["slow", "mid"]

    def test_most_remaining_work_policy(self):
        pool = self._pool()
        victims = choose_victims(pool, 1, policy=most_remaining_work)
        assert victims[0].name == "slow"

    def test_protect_excludes(self):
        victims = choose_victims(self._pool(), 3, protect={"slow"})
        assert all(v.name != "slow" for v in victims)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            choose_victims(self._pool(), -1)

    def test_nearly_done(self):
        assert [q.name for q in nearly_done(self._pool())] == ["fast"]


class TestRollbackMonitor:
    def test_tracks_progress(self):
        clock = VirtualClock()
        monitor = RollbackMonitor(1000, clock)
        clock.advance_wall(1.0)
        monitor.record_rolled_back(100)
        assert monitor.remaining_records == 900
        assert monitor.fraction_done == pytest.approx(0.1)

    def test_estimates_remaining_time(self):
        clock = VirtualClock()
        monitor = RollbackMonitor(1000, clock)
        for _ in range(5):
            clock.advance_wall(1.0)
            monitor.record_rolled_back(50)  # 50 records/second
        assert monitor.est_remaining_seconds() == pytest.approx(
            monitor.remaining_records / 50.0, rel=0.05
        )

    def test_none_before_any_speed(self):
        monitor = RollbackMonitor(10, VirtualClock())
        assert monitor.est_remaining_seconds() is None

    def test_zero_records_done_immediately(self):
        monitor = RollbackMonitor(0, VirtualClock())
        assert monitor.fraction_done == 1.0

    def test_negative_inputs_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ProgressError):
            RollbackMonitor(-1, clock)
        monitor = RollbackMonitor(10, clock)
        with pytest.raises(ProgressError):
            monitor.record_rolled_back(-5)
