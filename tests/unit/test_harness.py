"""Unit tests for the experiment harness itself."""

import pytest

from repro.bench.harness import run_experiment
from repro.config import SystemConfig
from repro.sim.load import LoadProfile
from repro.workloads import queries, tpcr


@pytest.fixture(scope="module")
def result():
    db = tpcr.build_database(scale=0.002, config=SystemConfig(work_mem_pages=8))
    return run_experiment("q2", db, queries.Q2)


class TestExperimentResult:
    def test_series_share_time_points(self, result):
        times = [t for t, _ in result.estimated_cost_series()]
        assert [t for t, _ in result.speed_series()] == times
        assert [t for t, _ in result.remaining_series()] == times
        assert [t for t, _ in result.percent_series()] == times

    def test_actual_remaining_ends_at_zero(self, result):
        series = result.actual_remaining_series()
        assert series[-1][1] == pytest.approx(0.0, abs=0.5)
        values = [v for _, v in series]
        assert values == sorted(values, reverse=True)

    def test_optimizer_series_is_linear_ramp_down(self, result):
        series = result.optimizer_remaining_series()
        nonzero = [(t, v) for t, v in series if v > 0]
        for (t0, v0), (t1, v1) in zip(nonzero, nonzero[1:]):
            assert (v0 - v1) == pytest.approx(t1 - t0, rel=1e-6)

    def test_exact_cost_is_final_estimate(self, result):
        assert result.exact_cost_pages == result.log.final().est_cost_pages

    def test_segment_boundaries_ordered_and_complete(self, result):
        times = [t for _, t in result.segment_boundaries]
        assert len(times) == result.num_segments
        assert times == sorted(times)
        assert times[-1] == pytest.approx(result.total_elapsed, abs=1.0)

    def test_restart_gives_cold_pool(self):
        db = tpcr.build_database(scale=0.002)
        first = run_experiment("a", db, queries.Q1)
        second = run_experiment("b", db, queries.Q1)
        # Cold restarts make repeated experiments comparable.
        assert second.total_elapsed == pytest.approx(first.total_elapsed, rel=0.05)

    def test_load_profile_applied(self):
        db = tpcr.build_database(scale=0.002)
        loaded = run_experiment(
            "slow", db, queries.Q1, load=LoadProfile.file_copy(0.0, 1e9, 4.0)
        )
        db2 = tpcr.build_database(scale=0.002)
        unloaded = run_experiment("fast", db2, queries.Q1)
        assert loaded.total_elapsed > 2.0 * unloaded.total_elapsed
