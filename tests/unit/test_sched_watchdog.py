"""Unit tests: scheduler watchdog (timeouts/deadlines) and containment."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import (
    ProgressError,
    QueryShedError,
    QueryTimeoutError,
    SpillSpaceError,
    TransientIOError,
)
from repro.executor.base import PULSE
from repro.fault import FaultPlan, RetryPolicy
from repro.sched.task import CANCELLED, DONE_STATES, FAILED, FINISHED, SHED, TIMED_OUT
from repro.workloads import queries, tpcr


def _db(**config_kwargs):
    config = SystemConfig(**config_kwargs) if config_kwargs else None
    return tpcr.build_database(scale=0.002, subset_rows=60, config=config)


class TestTimeout:
    def test_timeout_moves_task_to_timed_out(self):
        db = _db()
        session = db.connect()
        handle = session.submit(queries.Q2, name="slow", trace=True, timeout=2.0)
        with pytest.raises(QueryTimeoutError):
            handle.result()
        assert handle.state == TIMED_OUT
        assert handle.done
        trace = handle.trace()
        assert trace.counts().get("query_timed_out") == 1
        assert "query_finished" not in trace.counts()

    def test_timeout_is_measured_from_first_slice(self):
        db = _db()
        session = db.connect()
        # q1 runs first and burns virtual time; q2's timeout clock must
        # only start at q2's own first slice.
        session.submit(queries.Q1, name="q1", keep_rows=False).result()
        started = db.clock.now
        assert started > 10.0
        handle = session.submit(queries.Q2, name="q2", timeout=5.0)
        with pytest.raises(QueryTimeoutError):
            handle.result()
        assert handle.task.deadline == pytest.approx(
            handle.task.started_at + 5.0
        )
        assert handle.task.started_at >= started

    def test_absolute_deadline(self):
        db = _db()
        session = db.connect()
        deadline = db.clock.now + 3.0
        handle = session.submit(queries.Q2, name="q", deadline=deadline)
        with pytest.raises(QueryTimeoutError):
            handle.result()
        assert handle.state == TIMED_OUT
        assert db.clock.now >= deadline

    def test_generous_timeout_finishes_normally(self):
        db = _db()
        handle = db.connect().submit(queries.Q1, name="q", timeout=1e9)
        assert handle.result().row_count > 0
        assert handle.state == FINISHED

    def test_timed_out_query_does_not_block_siblings(self):
        db = _db()
        session = db.connect()
        doomed = session.submit(queries.Q2, name="doomed", timeout=2.0)
        survivor = session.submit(queries.Q1, name="survivor")
        result = survivor.result()
        assert result.row_count > 0
        assert doomed.state == TIMED_OUT
        assert db.buffer_pool.pinned_count == 0
        assert db.disk.temp_file_count() == 0

    def test_deadline_sweep_times_out_suspended_tasks(self):
        db = _db()
        session = db.connect()
        runner = session.submit(queries.Q1, name="runner")
        waiter = session.submit(queries.Q1, name="waiter", timeout=1.0)
        # One slice each arms waiter's deadline; then suspend it so only
        # runner advances the clock past the deadline.
        session.scheduler.step()
        session.scheduler.step()
        session.scheduler.suspend("waiter")
        runner.result()
        session.scheduler.resume("waiter")
        session.scheduler.step()
        assert waiter.state == TIMED_OUT

    def test_invalid_timeout_rejected(self):
        db = _db()
        with pytest.raises(ProgressError, match="timeout must be positive"):
            db.connect().submit(queries.Q1, timeout=0.0)


class TestContainment:
    def test_fatal_fault_fails_one_query_not_the_workload(self):
        db = _db(work_mem_pages=8)
        # Spill budget 0: the first query that spills dies; Q1 (a pure
        # scan, never spills) must be untouched.
        db.install_faults(FaultPlan(seed=1, spill_capacity_pages=0))
        try:
            session = db.connect()
            spiller = session.submit(queries.Q2, name="spiller", trace=True)
            scanner = session.submit(queries.Q1, name="scanner", trace=True)
            assert scanner.result().row_count > 0
            with pytest.raises(SpillSpaceError):
                spiller.result()
        finally:
            db.clear_faults()
        assert spiller.state == FAILED
        assert scanner.state == FINISHED
        assert spiller.trace().counts().get("query_failed") == 1
        assert db.buffer_pool.pinned_count == 0
        assert db.disk.temp_file_count() == 0

    def test_exhausted_retries_surface_the_transient_error(self):
        db = _db()
        db.install_faults(FaultPlan(
            seed=1, transient_read_rate=1.0, max_repeat=10,
            retry=RetryPolicy(max_attempts=2),
        ))
        try:
            handle = db.connect().submit(queries.Q1, name="q", trace=True)
            with pytest.raises(TransientIOError):
                handle.result()
        finally:
            db.clear_faults()
        assert handle.state == FAILED
        assert handle.trace().counts().get("io_gave_up", 0) >= 1

    def test_every_terminal_state_is_exactly_one(self):
        db = _db(work_mem_pages=8)
        db.install_faults(FaultPlan(seed=2, spill_capacity_pages=10))
        try:
            session = db.connect()
            handles = [
                session.submit(sql, name=name, trace=True, keep_rows=False)
                for name, sql in queries.PAPER_QUERIES.items()
            ]
            session.run()
        finally:
            db.clear_faults()
        terminal_kinds = (
            "query_finished", "query_failed",
            "query_cancelled", "query_timed_out",
        )
        for handle in handles:
            assert handle.task.state in DONE_STATES
            counts = handle.trace().counts()
            assert sum(counts.get(k, 0) for k in terminal_kinds) == 1

    def test_keyboard_interrupt_propagates_after_unwind(self):
        db = _db()
        session = db.connect()
        handle = session.submit(queries.Q1, name="q")

        def interrupted():
            raise KeyboardInterrupt
            yield  # pragma: no cover - makes this a generator

        handle.task.gen.close()
        handle.task.gen = interrupted()
        with pytest.raises(KeyboardInterrupt):
            session.scheduler.step()
        assert handle.state == FAILED
        assert db.buffer_pool.pinned_count == 0


class TestEvictionUnwind:
    """Regression: watchdog/eviction must unwind mid-spill state exactly
    once, on every termination path — the historical bug was the terminal
    transition closing the coroutine *before* flipping the state, so a
    raising operator ``finally`` left a zombie SUSPENDED task with a live
    indicator (and a second cancel could unwind it again)."""

    def _spill_mid_flight(self, session, handle):
        """Step until the query has live mid-spill state (temp files)."""
        db = session.db
        while db.disk.temp_file_count() == 0:
            assert session.step() is not None, "query never spilled"
            assert not handle.done
        return db.disk.temp_file_count()

    def test_past_deadline_mid_spill_releases_exactly_once(self):
        db = _db(work_mem_pages=8)
        session = db.connect()
        handle = session.submit(queries.Q2, name="q", trace=True)
        temps = self._spill_mid_flight(session, handle)
        assert temps > 0

        task = handle.task
        aborts = []
        indicator = task.indicator
        original_abort = indicator.abort
        indicator.abort = lambda **kw: aborts.append(kw) or original_abort(**kw)

        # Arm the deadline at "now": the very next watchdog sweep fires
        # while the query is suspended mid-spill.
        task.deadline = db.clock.now
        session.step()
        assert task.state == TIMED_OUT
        assert db.buffer_pool.pinned_count == 0
        assert db.disk.temp_file_count() == 0
        assert len(aborts) == 1
        assert indicator.finalized

        # Idempotence: cancel and shed after the timeout are no-ops —
        # no second unwind, no second indicator abort, state unchanged.
        session.scheduler.cancel(task)
        session.scheduler.shed(task)
        assert task.state == TIMED_OUT
        assert len(aborts) == 1
        assert handle.trace().counts().get("query_timed_out") == 1

    def test_shed_mid_spill_releases_pins_and_temps(self):
        db = _db(work_mem_pages=8)
        session = db.connect()
        handle = session.submit(queries.Q2, name="q", trace=True)
        assert self._spill_mid_flight(session, handle) > 0

        task = session.scheduler.shed(handle.task, reason="test eviction")
        assert task.state == SHED
        assert task.done
        assert db.buffer_pool.pinned_count == 0
        assert db.disk.temp_file_count() == 0
        assert handle.trace().counts().get("query_shed") == 1
        with pytest.raises(QueryShedError, match="test eviction"):
            handle.result()

    def test_raising_operator_finally_cannot_leave_a_zombie(self):
        db = _db()
        session = db.connect()
        handle = session.submit(queries.Q1, name="q")
        session.step()  # arm: one slice so the task is mid-flight

        def nasty():
            try:
                while True:
                    yield PULSE
            finally:
                raise RuntimeError("operator finally boom")

        task = handle.task
        task.gen.close()
        gen = nasty()
        next(gen)  # enter the try so close() runs the finally
        task.gen = gen
        with pytest.raises(RuntimeError, match="finally boom"):
            session.scheduler.cancel(task)
        # Despite the raise, the task is terminally cancelled and its
        # indicator was aborted — no zombie with a live ticker.
        assert task.state == CANCELLED
        assert task.done
        assert task.indicator.finalized
        assert task.log is not None

