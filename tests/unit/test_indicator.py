"""Unit tests for the indicator facade, reports and history."""

import pytest

from repro.core.history import ProgressLog
from repro.core.indicator import ProgressIndicator
from repro.core.report import ProgressReport
from repro.errors import ProgressError
from repro.workloads import queries


def run_monitored(db, sql, **kwargs):
    db.restart()  # cold buffer pool, as in the paper's protocol
    return db.execute_with_progress(sql, **kwargs)


class TestIndicatorLifecycle:
    def test_reports_every_update_interval(self, tiny_tpcr):
        monitored = run_monitored(tiny_tpcr, queries.Q1)
        interval = tiny_tpcr.config.progress.update_interval
        times = [r.elapsed for r in monitored.log.reports[:-1]]
        for i, t in enumerate(times):
            assert t == pytest.approx((i + 1) * interval)

    def test_final_report_flagged(self, tiny_tpcr):
        monitored = run_monitored(tiny_tpcr, queries.Q1)
        assert monitored.log.final().finished
        assert all(not r.finished for r in monitored.log.reports[:-1])

    def test_finalize_twice_rejected(self, tiny_tpcr):
        monitored = run_monitored(tiny_tpcr, queries.Q1)
        with pytest.raises(ProgressError):
            monitored.indicator.finalize()

    def test_on_report_callback_invoked(self, tiny_tpcr):
        seen = []
        run_monitored(tiny_tpcr, queries.Q1, on_report=seen.append)
        assert seen
        assert all(isinstance(r, ProgressReport) for r in seen)

    def test_initial_cost_matches_optimizer(self, tiny_tpcr):
        monitored = run_monitored(tiny_tpcr, queries.Q1)
        assert monitored.log.initial_cost_pages == pytest.approx(
            monitored.log.reports[0].est_cost_pages, rel=0.05
        )


class TestReportContents:
    def test_percent_monotone_for_scan(self, tiny_tpcr):
        monitored = run_monitored(tiny_tpcr, queries.Q1)
        percents = [r.percent_done for r in monitored.log]
        assert all(b >= a - 1e-9 for a, b in zip(percents, percents[1:]))

    def test_final_percent_is_100(self, tiny_tpcr):
        monitored = run_monitored(tiny_tpcr, queries.Q1)
        assert monitored.log.final().percent_done == pytest.approx(100.0)

    def test_warmup_suppresses_speed(self, tiny_tpcr):
        indicator_report = None
        planned = tiny_tpcr.prepare(queries.Q1)
        indicator = ProgressIndicator(planned, tiny_tpcr.clock, tiny_tpcr.config)
        indicator_report = indicator.report()  # elapsed 0 < warmup
        assert indicator_report.speed_pages_per_sec is None
        assert indicator_report.est_remaining_seconds is None
        indicator.finalize()

    def test_speed_positive_while_running(self, tiny_tpcr):
        monitored = run_monitored(tiny_tpcr, queries.Q1)
        mid = monitored.log.reports[len(monitored.log.reports) // 2]
        assert mid.speed_pages_per_sec is not None
        assert mid.speed_pages_per_sec > 0

    def test_format_line_renders(self, tiny_tpcr):
        monitored = run_monitored(tiny_tpcr, queries.Q1)
        line = monitored.log.final().format_line()
        assert "done" in line and "cost=" in line

    def test_current_segment_progresses(self, tiny_tpcr):
        monitored = run_monitored(tiny_tpcr, queries.Q2)
        segments = [
            r.current_segment
            for r in monitored.log
            if r.current_segment is not None
        ]
        assert segments == sorted(segments)


class TestProgressLog:
    def _log(self, db):
        return run_monitored(db, queries.Q1).log

    def test_len_and_iter(self, tiny_tpcr):
        log = self._log(tiny_tpcr)
        assert len(log) == len(list(log))

    def test_at_lookup(self, tiny_tpcr):
        log = self._log(tiny_tpcr)
        report = log.at(log.total_elapsed / 2)
        assert report is not None
        assert report.elapsed <= log.total_elapsed / 2

    def test_at_before_first_report_is_none(self, tiny_tpcr):
        log = self._log(tiny_tpcr)
        assert log.at(-1.0) is None

    def test_actual_remaining(self, tiny_tpcr):
        log = self._log(tiny_tpcr)
        assert log.actual_remaining(0.0) == pytest.approx(log.total_elapsed)
        assert log.actual_remaining(log.total_elapsed + 5) == 0.0

    def test_series_shapes(self, tiny_tpcr):
        log = self._log(tiny_tpcr)
        n = len(log)
        assert len(log.estimated_cost_series()) == n
        assert len(log.speed_series()) == n
        assert len(log.remaining_series()) == n
        assert len(log.percent_series()) == n

    def test_csv_roundtrip_lines(self, tiny_tpcr):
        log = self._log(tiny_tpcr)
        csv = log.to_csv()
        assert len(csv.strip().splitlines()) == len(log) + 1

    def test_mean_absolute_remaining_error_defined(self, tiny_tpcr):
        log = self._log(tiny_tpcr)
        error = log.mean_absolute_remaining_error()
        assert error is not None
        assert error >= 0.0
