"""Unit tests for the executor's row utilities."""

import pytest

from repro.executor.rowops import combiner, concat_layout, layout_of, row_width_fn
from repro.planner.physical import PlanColumn
from repro.storage.schema import TUPLE_HEADER_BYTES
from repro.storage.types import FLOAT, INTEGER, string


def cols(*specs):
    return [PlanColumn(coord, name, type_, 4.0) for coord, name, type_ in specs]


LEFT = cols(((0, 0), "a", INTEGER), ((0, 1), "s", string(10)))
RIGHT = cols(((1, 0), "b", FLOAT))


class TestLayouts:
    def test_layout_of(self):
        assert layout_of(LEFT) == {(0, 0): 0, (0, 1): 1}

    def test_concat_layout_offsets_right(self):
        layout = concat_layout(LEFT, RIGHT)
        assert layout[(1, 0)] == 2
        assert layout[(0, 1)] == 1


class TestWidthFn:
    def test_fixed_only_is_constant(self):
        width = row_width_fn(cols(((0, 0), "a", INTEGER), ((0, 1), "b", FLOAT)))
        assert width((1, 2.0)) == TUPLE_HEADER_BYTES + 4 + 8
        assert width((9, 9.0)) == width((1, 2.0))

    def test_strings_vary(self):
        width = row_width_fn(LEFT)
        assert width((1, "abc")) == TUPLE_HEADER_BYTES + 4 + 4
        assert width((1, None)) == TUPLE_HEADER_BYTES + 4 + 1

    def test_matches_schema_row_width(self):
        from repro.storage.schema import Column, Schema

        schema = Schema([Column("a", INTEGER), Column("s", string(10))])
        width = row_width_fn(LEFT)
        for row in [(1, "x"), (2, ""), (3, None)]:
            assert width(row) == schema.row_width(row)


class TestCombiner:
    def test_picks_from_correct_side(self):
        out = cols(((1, 0), "b", FLOAT), ((0, 0), "a", INTEGER))
        combine = combiner(LEFT, RIGHT, out)
        assert combine((7, "s"), (3.5,)) == (3.5, 7)

    def test_subset_projection(self):
        out = cols(((0, 1), "s", string(10)))
        combine = combiner(LEFT, RIGHT, out)
        assert combine((7, "hello"), (3.5,)) == ("hello",)

    def test_empty_output(self):
        combine = combiner(LEFT, RIGHT, [])
        assert combine((7, "s"), (3.5,)) == ()
