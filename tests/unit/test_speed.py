"""Unit tests for the speed estimators (Section 4.6)."""

import pytest

from repro.core.speed import (
    DecayingSpeedEstimator,
    GlobalSpeedEstimator,
    WindowSpeedEstimator,
    make_speed_estimator,
)
from repro.errors import ProgressError


class TestWindowSpeed:
    def test_none_before_two_samples(self):
        est = WindowSpeedEstimator(10.0)
        assert est.speed() is None
        est.record(0.0, 0.0)
        assert est.speed() is None

    def test_constant_rate(self):
        est = WindowSpeedEstimator(10.0)
        for t in range(11):
            est.record(float(t), 5.0 * t)
        assert est.speed() == pytest.approx(5.0)

    def test_window_forgets_old_rate(self):
        est = WindowSpeedEstimator(10.0)
        # 10 seconds at 100 U/s, then 20 seconds at 1 U/s.
        work = 0.0
        for t in range(31):
            est.record(float(t), work)
            work += 100.0 if t < 10 else 1.0
        assert est.speed() == pytest.approx(1.0, rel=0.2)

    def test_reacts_to_speedup(self):
        est = WindowSpeedEstimator(5.0)
        work = 0.0
        for t in range(20):
            est.record(float(t), work)
            work += 1.0 if t < 10 else 50.0
        assert est.speed() == pytest.approx(50.0, rel=0.2)

    def test_invalid_window_rejected(self):
        with pytest.raises(ProgressError):
            WindowSpeedEstimator(0.0)

    def test_zero_elapsed_returns_none(self):
        est = WindowSpeedEstimator(10.0)
        est.record(1.0, 5.0)
        est.record(1.0, 6.0)
        assert est.speed() is None


class TestDecayingSpeed:
    def test_converges_to_steady_rate(self):
        est = DecayingSpeedEstimator(alpha=0.5)
        for t in range(20):
            est.record(float(t), 3.0 * t)
        assert est.speed() == pytest.approx(3.0)

    def test_recent_rate_has_major_impact(self):
        est = DecayingSpeedEstimator(alpha=0.5)
        work = 0.0
        for t in range(20):
            est.record(float(t), work)
            work += 10.0 if t < 10 else 1.0
        speed = est.speed()
        assert 1.0 <= speed < 5.0  # pulled toward recent 1.0, remembers past

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ProgressError):
            DecayingSpeedEstimator(alpha=0.0)
        with pytest.raises(ProgressError):
            DecayingSpeedEstimator(alpha=1.5)


class TestGlobalSpeed:
    def test_whole_history_mean(self):
        est = GlobalSpeedEstimator()
        est.record(0.0, 0.0)
        est.record(10.0, 100.0)
        est.record(20.0, 110.0)
        assert est.speed() == pytest.approx(5.5)

    def test_none_without_samples(self):
        assert GlobalSpeedEstimator().speed() is None


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("window", WindowSpeedEstimator),
            ("decay", DecayingSpeedEstimator),
            ("global", GlobalSpeedEstimator),
        ],
    )
    def test_factory_kinds(self, kind, cls):
        assert isinstance(make_speed_estimator(kind, 10.0, 0.3), cls)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProgressError):
            make_speed_estimator("magic", 10.0, 0.3)
