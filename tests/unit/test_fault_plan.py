"""Unit tests: fault plans, retry policy, and injector determinism."""

from __future__ import annotations

import pytest

from repro.errors import (
    FaultConfigError,
    PageCorruptionError,
    SpillSpaceError,
    TransientIOError,
)
from repro.fault import (
    BufferPressureWindow,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SlowDiskWindow,
)
from repro.sim.clock import VirtualClock


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)

    def test_max_retries_excludes_first_attempt(self):
        assert RetryPolicy(max_attempts=4).max_retries == 3

    def test_validation(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultConfigError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(FaultConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(FaultConfigError):
            RetryPolicy().backoff(0)


class TestWindows:
    def test_slow_window_one_shot(self):
        w = SlowDiskWindow(start=1.0, end=3.0, factor=2.0)
        assert not w.active(0.5)
        assert w.active(1.0)
        assert w.active(2.9)
        assert not w.active(3.0)

    def test_slow_window_periodic(self):
        w = SlowDiskWindow(start=1.0, end=3.0, factor=2.0, period=10.0)
        assert w.active(12.0)
        assert not w.active(15.0)
        assert w.active(22.5)

    def test_window_validation(self):
        with pytest.raises(FaultConfigError):
            SlowDiskWindow(start=3.0, end=1.0, factor=2.0)
        with pytest.raises(FaultConfigError):
            SlowDiskWindow(start=0.0, end=1.0, factor=0.5)
        with pytest.raises(FaultConfigError):
            SlowDiskWindow(start=0.0, end=5.0, factor=2.0, period=3.0)
        with pytest.raises(FaultConfigError):
            BufferPressureWindow(start=0.0, end=1.0, reserved_frames=0)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(transient_read_rate=1.5)
        with pytest.raises(FaultConfigError):
            FaultPlan(corruption_rate=-0.1)
        with pytest.raises(FaultConfigError):
            FaultPlan(transient_read_rate=0.7, corruption_rate=0.7)
        with pytest.raises(FaultConfigError):
            FaultPlan(max_repeat=0)
        with pytest.raises(FaultConfigError):
            FaultPlan(spill_capacity_pages=-1)

    def test_quiet_plan(self):
        assert FaultPlan().quiet
        assert not FaultPlan(transient_read_rate=0.1).quiet
        assert not FaultPlan(spill_capacity_pages=10).quiet
        assert not FaultPlan(
            slow_windows=(SlowDiskWindow(0.0, 1.0, 2.0),)
        ).quiet


class TestInjectorDeterminism:
    def _draws(self, seed: int, n: int = 500):
        plan = FaultPlan(
            seed=seed, transient_read_rate=0.05, corruption_rate=0.02
        )
        injector = FaultInjector(plan, VirtualClock())
        out = []
        for i in range(n):
            fault = injector.on_read(1, i)
            out.append(None if fault is None else (fault.fault, fault.failures))
        return out

    def test_same_seed_same_schedule(self):
        assert self._draws(7) == self._draws(7)

    def test_different_seed_different_schedule(self):
        assert self._draws(7) != self._draws(8)

    def test_fault_kinds_and_errors(self):
        plan = FaultPlan(seed=3, transient_read_rate=0.5, corruption_rate=0.5)
        injector = FaultInjector(plan, VirtualClock())
        kinds = set()
        for i in range(200):
            fault = injector.on_read(1, i)
            assert fault is not None
            kinds.add(fault.fault)
            if fault.fault == "transient_io":
                assert isinstance(fault.error, TransientIOError)
            else:
                assert isinstance(fault.error, PageCorruptionError)
            assert 1 <= fault.failures <= plan.max_repeat
        assert kinds == {"transient_io", "page_checksum"}

    def test_write_faults(self):
        plan = FaultPlan(seed=3, transient_write_rate=1.0, max_repeat=1)
        injector = FaultInjector(plan, VirtualClock())
        fault = injector.on_write(2, 0)
        assert fault is not None
        assert fault.fault == "transient_write"
        assert fault.failures == 1

    def test_quiet_plan_injects_nothing(self):
        injector = FaultInjector(FaultPlan(), VirtualClock())
        assert all(injector.on_read(1, i) is None for i in range(100))
        assert all(injector.on_write(1, i) is None for i in range(100))
        assert injector.io_factor() == 1.0
        assert injector.reserved_frames() == 0

    def test_spill_budget(self):
        plan = FaultPlan(spill_capacity_pages=3)
        injector = FaultInjector(plan, VirtualClock())
        for i in range(3):
            injector.check_spill(9, i)
        with pytest.raises(SpillSpaceError):
            injector.check_spill(9, 3)
        assert injector.counters()["spill_exhausted"] == 1

    def test_windows_consult_clock(self):
        clock = VirtualClock()
        plan = FaultPlan(
            slow_windows=(SlowDiskWindow(1.0, 3.0, factor=4.0),),
            pressure_windows=(BufferPressureWindow(0.0, 2.0, reserved_frames=6),),
        )
        injector = FaultInjector(plan, clock)
        assert injector.io_factor() == 1.0
        assert injector.reserved_frames() == 6
        clock.advance_wall(1.5)
        assert injector.io_factor() == 4.0
        clock.advance_wall(2.0)
        assert injector.io_factor() == 1.0
        assert injector.reserved_frames() == 0
