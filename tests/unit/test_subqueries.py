"""Unit tests for uncorrelated IN-subqueries (hashed InitPlans)."""

import pytest

from repro.database import Database
from repro.errors import BindError
from repro.storage.schema import Column, Schema
from repro.storage.types import FLOAT, INTEGER, string


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "emp",
        Schema(
            [
                Column("id", INTEGER),
                Column("dept", INTEGER),
                Column("salary", FLOAT),
            ]
        ),
        [(i, i % 5, 1000.0 * (i % 10)) for i in range(100)],
    )
    database.create_table(
        "dept",
        Schema([Column("id", INTEGER), Column("name", string(12))]),
        [(0, "eng"), (1, "sales"), (2, "hr"), (3, "ops"), (7, "empty")],
    )
    database.analyze()
    return database


class TestInSubquery:
    def test_basic_membership(self, db):
        result = db.execute(
            "select id from emp where dept in (select id from dept)"
        )
        expected = [i for i in range(100) if i % 5 in (0, 1, 2, 3)]
        assert sorted(r[0] for r in result.rows) == expected

    def test_filtered_subquery(self, db):
        result = db.execute(
            "select id from emp where dept in "
            "(select id from dept where name = 'eng')"
        )
        assert sorted(r[0] for r in result.rows) == [i for i in range(100) if i % 5 == 0]

    def test_not_in(self, db):
        result = db.execute(
            "select id from emp where dept not in (select id from dept)"
        )
        assert sorted(r[0] for r in result.rows) == [i for i in range(100) if i % 5 == 4]

    def test_empty_subquery_result(self, db):
        result = db.execute(
            "select id from emp where dept in "
            "(select id from dept where name = 'nothing')"
        )
        assert result.rows == []

    def test_not_in_with_null_in_set_matches_nothing(self):
        database = Database()
        database.create_table("a", Schema([Column("x", INTEGER)]), [(1,), (2,)])
        database.create_table("b", Schema([Column("x", INTEGER)]), [(1,), (None,)])
        database.analyze()
        # SQL: NOT IN against a set containing NULL is never TRUE.
        result = database.execute(
            "select x from a where x not in (select x from b)"
        )
        assert result.rows == []

    def test_null_operand_never_matches(self):
        database = Database()
        database.create_table("a", Schema([Column("x", INTEGER)]), [(None,), (1,)])
        database.create_table("b", Schema([Column("x", INTEGER)]), [(1,)])
        database.analyze()
        result = database.execute("select x from a where x in (select x from b)")
        assert result.rows == [(1,)]

    def test_subquery_with_aggregation(self, db):
        result = db.execute(
            "select id from emp where dept in "
            "(select dept from emp group by dept having count(*) > 19)"
        )
        assert len(result.rows) == 100  # every dept has exactly 20 members

    def test_subquery_combined_with_other_predicates(self, db):
        result = db.execute(
            "select id from emp where dept in (select id from dept) "
            "and salary > 5000"
        )
        expected = [
            i
            for i in range(100)
            if i % 5 in (0, 1, 2, 3) and 1000.0 * (i % 10) > 5000
        ]
        assert sorted(r[0] for r in result.rows) == expected

    def test_monitored_query_with_subplan(self, db):
        monitored = db.execute_with_progress(
            "select id from emp where dept in (select id from dept)",
            keep_rows=True,
        )
        assert len(monitored.result.rows) == 80
        assert monitored.log.final().percent_done == pytest.approx(100.0)

    def test_subplan_charges_time(self, db):
        before = db.clock.now
        db.execute("select id from emp where dept in (select id from dept)")
        assert db.clock.now > before


class TestInSubqueryBinding:
    def test_multi_column_subquery_rejected(self, db):
        with pytest.raises(BindError, match="exactly one column"):
            db.prepare(
                "select id from emp where dept in (select id, name from dept)"
            )

    def test_correlated_reference_rejected(self, db):
        with pytest.raises(BindError, match="correlated"):
            db.prepare(
                "select id from emp where dept in "
                "(select id from dept where id = emp.dept)"
            )

    def test_type_mismatch_rejected(self, db):
        with pytest.raises(BindError):
            db.prepare(
                "select id from emp where dept in (select name from dept)"
            )

    def test_string_subquery_allowed(self, db):
        database = Database()
        database.create_table(
            "a", Schema([Column("s", string(5))]), [("x",), ("y",)]
        )
        database.create_table(
            "b", Schema([Column("s", string(5))]), [("y",), ("z",)]
        )
        database.analyze()
        result = database.execute("select s from a where s in (select s from b)")
        assert result.rows == [("y",)]
