"""Unit tests for progress-history CSV archiving (paper Section 6 uses)."""

import pytest

from repro.core.history import ProgressLog
from repro.workloads import queries, tpcr


@pytest.fixture(scope="module")
def log():
    db = tpcr.build_database(scale=0.002)
    return db.execute_with_progress(queries.Q2).log


class TestCsvRoundTrip:
    def test_row_count_preserved(self, log):
        restored = ProgressLog.from_csv(log.to_csv())
        assert len(restored) == len(log)

    def test_series_preserved(self, log):
        restored = ProgressLog.from_csv(log.to_csv())
        for original, back in zip(
            log.estimated_cost_series(), restored.estimated_cost_series()
        ):
            assert back[0] == pytest.approx(original[0], abs=1e-3)
            assert back[1] == pytest.approx(original[1], abs=1e-2)

    def test_percent_preserved(self, log):
        restored = ProgressLog.from_csv(log.to_csv())
        for original, back in zip(log.percent_series(), restored.percent_series()):
            assert back[1] == pytest.approx(original[1], abs=1e-2)

    def test_none_fields_survive(self, log):
        restored = ProgressLog.from_csv(log.to_csv())
        original_undefined = [
            r.est_remaining_seconds is None for r in log.reports
        ]
        restored_undefined = [
            r.est_remaining_seconds is None for r in restored.reports
        ]
        assert restored_undefined == original_undefined

    def test_final_flag_set(self, log):
        restored = ProgressLog.from_csv(log.to_csv())
        assert restored.final().finished

    def test_total_elapsed_matches(self, log):
        restored = ProgressLog.from_csv(log.to_csv())
        assert restored.total_elapsed == pytest.approx(log.total_elapsed, abs=1e-2)

    def test_tuning_lookups_still_work(self, log):
        restored = ProgressLog.from_csv(log.to_csv())
        mid = restored.at(restored.total_elapsed / 2)
        assert mid is not None
        assert restored.mean_absolute_remaining_error() is not None


class TestCsvErrors:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProgressLog.from_csv("")

    def test_header_only_rejected(self):
        with pytest.raises(ValueError):
            ProgressLog.from_csv("elapsed,done_pages,x,y,z,w,v\n")

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError):
            ProgressLog.from_csv(
                "elapsed,done_pages,est_cost_pages,percent_done,"
                "speed_pages_per_sec,est_remaining_seconds,current_segment\n"
                "1,2,3\n"
            )
