"""Unit tests for the virtual clock."""

import math

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.load import CPU, IO, InterferenceWindow, LoadProfile


class TestAdvanceUnloaded:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_moves_time_by_cost(self):
        clock = VirtualClock()
        clock.advance(3.5, CPU)
        assert clock.now == pytest.approx(3.5)

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.0, IO)
        clock.advance(2.0, CPU)
        assert clock.now == pytest.approx(3.0)

    def test_zero_cost_is_noop(self):
        clock = VirtualClock()
        clock.advance(0.0, IO)
        assert clock.now == 0.0

    def test_negative_cost_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0, IO)

    def test_cost_counters_track_per_resource(self):
        clock = VirtualClock()
        clock.advance(2.0, IO)
        clock.advance(3.0, CPU)
        clock.advance(1.0, IO)
        assert clock.cost_charged[IO] == pytest.approx(3.0)
        assert clock.cost_charged[CPU] == pytest.approx(3.0)


class TestAdvanceWithLoad:
    def test_io_slowdown_stretches_io_work(self):
        clock = VirtualClock(LoadProfile.file_copy(0.0, 100.0, slowdown=2.0))
        clock.advance(5.0, IO)
        assert clock.now == pytest.approx(10.0)

    def test_io_slowdown_leaves_cpu_work_alone(self):
        clock = VirtualClock(LoadProfile.file_copy(0.0, 100.0, slowdown=2.0))
        clock.advance(5.0, CPU)
        assert clock.now == pytest.approx(5.0)

    def test_cpu_slowdown_stretches_cpu_work(self):
        clock = VirtualClock(LoadProfile.cpu_hog(0.0, slowdown=3.0))
        clock.advance(2.0, CPU)
        assert clock.now == pytest.approx(6.0)

    def test_advance_integrates_across_window_start(self):
        # 10 unloaded wall seconds, then 3x slowdown: 15 io-seconds of work
        # take 10 + 5*3 = 25 wall seconds... but the window ends at 20.
        clock = VirtualClock(LoadProfile.file_copy(10.0, 20.0, slowdown=3.0))
        clock.advance(15.0, IO)
        # 10s unloaded work, then 10 wall seconds buy 10/3 work inside the
        # window, and the remaining 15-10-10/3 runs unloaded after it.
        expected = 20.0 + (15.0 - 10.0 - 10.0 / 3.0)
        assert clock.now == pytest.approx(expected)

    def test_advance_entirely_before_window(self):
        clock = VirtualClock(LoadProfile.file_copy(100.0, 200.0, slowdown=9.0))
        clock.advance(50.0, IO)
        assert clock.now == pytest.approx(50.0)

    def test_set_load_midway_applies_immediately(self):
        clock = VirtualClock()
        clock.advance(5.0, IO)
        clock.set_load(LoadProfile.file_copy(0.0, math.inf, slowdown=4.0))
        clock.advance(1.0, IO)
        assert clock.now == pytest.approx(9.0)

    def test_overlapping_windows_compound(self):
        load = LoadProfile(
            [
                InterferenceWindow(0.0, 100.0, io_factor=2.0),
                InterferenceWindow(0.0, 100.0, io_factor=3.0),
            ]
        )
        clock = VirtualClock(load)
        clock.advance(1.0, IO)
        assert clock.now == pytest.approx(6.0)


class TestTickers:
    def test_ticker_fires_at_exact_instants(self):
        clock = VirtualClock()
        fired = []
        clock.add_ticker(10.0, fired.append)
        clock.advance(35.0, CPU)
        assert fired == pytest.approx([10.0, 20.0, 30.0])

    def test_ticker_fires_inside_single_large_advance(self):
        clock = VirtualClock()
        fired = []
        clock.add_ticker(1.0, fired.append)
        clock.advance(3.5, IO)
        assert fired == pytest.approx([1.0, 2.0, 3.0])

    def test_ticker_custom_first_fire(self):
        clock = VirtualClock()
        fired = []
        clock.add_ticker(10.0, fired.append, first=2.0)
        clock.advance(13.0, CPU)
        assert fired == pytest.approx([2.0, 12.0])

    def test_cancelled_ticker_stops(self):
        clock = VirtualClock()
        fired = []
        ticker = clock.add_ticker(1.0, fired.append)
        clock.advance(2.5, CPU)
        ticker.cancel()
        clock.advance(5.0, CPU)
        assert fired == pytest.approx([1.0, 2.0])

    def test_two_tickers_interleave(self):
        clock = VirtualClock()
        events = []
        clock.add_ticker(2.0, lambda t: events.append(("a", t)))
        clock.add_ticker(3.0, lambda t: events.append(("b", t)))
        clock.advance(6.5, CPU)
        assert events == [("a", 2.0), ("b", 3.0), ("a", 4.0), ("a", 6.0), ("b", 6.0)]

    def test_ticker_sees_load_stretched_time(self):
        clock = VirtualClock(LoadProfile.cpu_hog(0.0, slowdown=2.0))
        fired = []
        clock.add_ticker(1.0, fired.append)
        clock.advance(2.0, CPU)  # 4 wall seconds
        assert fired == pytest.approx([1.0, 2.0, 3.0, 4.0])

    def test_invalid_interval_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.add_ticker(0.0, lambda t: None)


class TestAdvanceWall:
    def test_advance_wall_moves_time(self):
        clock = VirtualClock()
        clock.advance_wall(7.0)
        assert clock.now == pytest.approx(7.0)

    def test_advance_wall_fires_tickers(self):
        clock = VirtualClock()
        fired = []
        clock.add_ticker(2.0, fired.append)
        clock.advance_wall(5.0)
        assert fired == pytest.approx([2.0, 4.0])

    def test_advance_wall_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance_wall(-0.1)

    def test_advance_wall_charges_no_cost(self):
        clock = VirtualClock()
        clock.advance_wall(5.0)
        assert clock.cost_charged[IO] == 0.0
        assert clock.cost_charged[CPU] == 0.0
