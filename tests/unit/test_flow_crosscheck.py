"""Unit tests: the static/dynamic pulse cross-check (analysis.flow)."""

from __future__ import annotations

import pytest

from repro.analysis.flow.crosscheck import (
    ObservedPulses,
    check_trace,
    record_trace,
    run_probe,
    static_operator_summaries,
    validate,
)
from repro.analysis.flow.summaries import ClassPulseSummary
from repro.obs.events import OperatorInstantiated, PulseObserved


def summary(name: str, origin: bool, may_pulse: bool) -> ClassPulseSummary:
    return ClassPulseSummary(
        class_key=f"repro.executor.x.{name}", origin=origin, may_pulse=may_pulse
    )


STATIC = {
    "ScanOp": summary("ScanOp", origin=True, may_pulse=True),
    "MapOp": summary("MapOp", origin=False, may_pulse=True),
    "QuietOp": summary("QuietOp", origin=False, may_pulse=False),
}


def observed(**per_class) -> ObservedPulses:
    """``observed(ScanOp=(built, seen, origin), ...)``"""
    out = ObservedPulses()
    for name, (built, seen, origin) in per_class.items():
        out.instantiated[name] = built
        out.seen[name] = seen
        out.origin[name] = origin
    return out


class TestValidate:
    def test_agreement(self):
        report = validate(
            observed(ScanOp=(1, 10, 10), MapOp=(1, 10, 0)), STATIC
        )
        assert report.ok
        assert report.errors == []

    def test_soundness_observed_origin_must_be_static_origin(self):
        report = validate(observed(MapOp=(1, 5, 5)), STATIC)
        assert not report.ok
        [error] = report.errors
        assert "MapOp" in error and "missed a suspension point" in error

    def test_consistency_seen_requires_may_pulse(self):
        report = validate(observed(QuietOp=(1, 3, 0)), STATIC)
        assert not report.ok
        [error] = report.errors
        assert "QuietOp" in error and "statically pulse-free" in error

    def test_completeness_is_a_note_by_default(self):
        report = validate(observed(ScanOp=(2, 0, 0)), STATIC)
        assert report.ok
        [note] = [n for n in report.notes if "ScanOp" in n]
        assert "never observed originating" in note

    def test_completeness_is_an_error_under_strict(self):
        report = validate(
            observed(ScanOp=(2, 0, 0)), STATIC, strict_complete=True
        )
        assert not report.ok

    def test_uninstantiated_originator_is_only_a_note(self):
        report = validate(
            observed(MapOp=(1, 0, 0)), STATIC, strict_complete=True
        )
        assert report.ok
        assert any("not instantiated" in n for n in report.notes)

    def test_unknown_class_is_ignored(self):
        # Probe wrappers and harness helpers are not in the static map.
        report = validate(observed(_WrapperOp=(1, 7, 7)), STATIC)
        assert report.ok

    def test_render_shows_kinds_and_verdict(self):
        report = validate(
            observed(ScanOp=(1, 10, 10), MapOp=(1, 10, 0)), STATIC
        )
        text = report.render()
        assert "static=origin" in text
        assert "static=forward" in text
        assert "static=silent" in text
        assert text.endswith("agree")

    def test_render_disagreement(self):
        text = validate(observed(QuietOp=(1, 3, 0)), STATIC).render()
        assert "ERROR:" in text
        assert text.endswith("DISAGREE")


class TestAbsorbEvents:
    def test_rebuilds_origin_attribution_from_a_stream(self):
        # scan(node 0) originates 3 pulses; map(node 1) wraps it and sees
        # all 3 plus nothing of its own.
        events = [
            OperatorInstantiated(t=0.0, op="ScanOp", node=0, children=()),
            OperatorInstantiated(t=0.0, op="MapOp", node=1, children=(0,)),
        ]
        events += [PulseObserved(t=1.0, op="ScanOp", node=0)] * 3
        events += [PulseObserved(t=1.0, op="MapOp", node=1)] * 3
        obs = ObservedPulses()
        obs.absorb_events(events)
        assert obs.instantiated == {"ScanOp": 1, "MapOp": 1}
        assert obs.seen == {"ScanOp": 3, "MapOp": 3}
        assert obs.origin == {"ScanOp": 3, "MapOp": 0}

    def test_non_probe_events_are_ignored(self):
        from repro.obs.events import SegmentStarted

        obs = ObservedPulses()
        obs.absorb_events([SegmentStarted(t=0.0, segment_id=0)])
        assert obs.instantiated == {}


class TestRealRun:
    @pytest.fixture(scope="class")
    def q1(self):
        probe, _ = run_probe("Q1", scale=0.005, work_mem=4)
        return probe

    def test_probe_wraps_every_operator(self, q1):
        assert len(q1.builds) > 0
        assert set(q1.pulses) == set(q1.builds)

    def test_origin_counts_are_nonnegative_for_real_plans(self, q1):
        # Wrapping is innermost-first, so a parent sees at least its
        # children's pulses; origins must come out >= 0.
        assert all(count >= 0 for count in q1.origin_counts().values())

    def test_q1_validates_against_the_shipped_tree(self, q1):
        obs = ObservedPulses()
        obs.absorb_probe(q1)
        report = validate(obs)
        assert report.ok, "\n" + report.render()

    def test_static_operator_summaries_cover_the_executor(self):
        static = static_operator_summaries()
        assert "SeqScanOp" in static
        assert static["SeqScanOp"].origin


class TestTraceRoundTrip:
    def test_record_then_check(self, tmp_path):
        path = tmp_path / "probe.jsonl"
        written = record_trace(path, query="Q1", scale=0.005)
        assert written > 0
        report = check_trace(path)
        assert report.ok, "\n" + report.render()
        assert report.observed.instantiated  # stream really had builds

    def test_recorded_stream_matches_live_probe(self, tmp_path):
        probe, events = run_probe("Q1", scale=0.005, record=True)
        live = ObservedPulses()
        live.absorb_probe(probe)
        replayed = ObservedPulses()
        replayed.absorb_events(events)
        assert replayed.instantiated == live.instantiated
        assert replayed.seen == live.seen
        assert replayed.origin == live.origin
