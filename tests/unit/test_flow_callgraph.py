"""Unit tests: call-graph construction and resolution (analysis.flow)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.flow.callgraph import CallGraph, build_callgraph

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def build_pkg(tmp_path: Path, modules: dict[str, str]) -> CallGraph:
    """Write ``modules`` (dotted name -> source) as a package and build
    its call graph."""
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("")
    for dotted, source in modules.items():
        parts = dotted.split(".")
        d = root
        for part in parts[:-1]:
            d = d / part
            d.mkdir(exist_ok=True)
            init = d / "__init__.py"
            if not init.exists():
                init.write_text("")
        (d / f"{parts[-1]}.py").write_text(source)
    return build_callgraph(root, package="pkg", receiver_types={})


class TestCollection:
    def test_functions_classes_and_methods(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "class C:\n"
            "    def m(self):\n"
            "        return 1\n"
            "def f():\n"
            "    return 2\n"
        )})
        assert "pkg.m.C.m" in g.functions
        assert "pkg.m.f" in g.functions
        assert "pkg.m.C" in g.classes
        assert g.classes["pkg.m.C"].methods == {"m": "pkg.m.C.m"}

    def test_nested_defs_get_locals_qualnames(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "def outer():\n"
            "    def inner():\n"
            "        yield 1\n"
            "    return inner\n"
        )})
        assert "pkg.m.outer.<locals>.inner" in g.functions
        assert g.functions["pkg.m.outer.<locals>.inner"].is_generator
        assert not g.functions["pkg.m.outer"].is_generator

    def test_methods_of_includes_nested_defs(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "class C:\n"
            "    def m(self):\n"
            "        def helper():\n"
            "            return 1\n"
            "        return helper()\n"
        )})
        names = {i.qualname for i in g.methods_of("pkg.m.C")}
        assert names == {"pkg.m.C.m", "pkg.m.C.m.<locals>.helper"}


class TestYieldClassification:
    def test_unguarded_literal_pulse_is_origin(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "PULSE = object()\n"
            "def gen():\n"
            "    yield PULSE\n"
        )})
        info = g.functions["pkg.m.gen"]
        assert info.has_origin_yield()

    def test_guarded_pulse_is_forward(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "PULSE = object()\n"
            "def gen(src):\n"
            "    for item in src:\n"
            "        if item is PULSE:\n"
            "            yield PULSE\n"
            "        else:\n"
            "            yield item\n"
        )})
        info = g.functions["pkg.m.gen"]
        assert not info.has_origin_yield()
        assert any(y.yields_pulse and y.guarded for y in info.yields)

    def test_name_forward_idiom_is_forward(self, tmp_path):
        # ``yield item`` outside the guard, with ``item is PULSE``
        # compared elsewhere in the frame, still forwards pulses.
        g = build_pkg(tmp_path, {"m": (
            "PULSE = object()\n"
            "def gen(src):\n"
            "    for item in src:\n"
            "        if item is PULSE:\n"
            "            note(item)\n"
            "        yield item\n"
        )})
        info = g.functions["pkg.m.gen"]
        assert not info.has_origin_yield()
        assert any(y.yields_pulse and y.guarded for y in info.yields)

    def test_plain_yield_is_not_pulse(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "def gen(rows):\n"
            "    for row in rows:\n"
            "        yield row\n"
        )})
        info = g.functions["pkg.m.gen"]
        assert not any(y.yields_pulse for y in info.yields)


class TestResolution:
    def test_bare_name_same_module(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "def helper():\n"
            "    return 1\n"
            "def caller():\n"
            "    return helper()\n"
        )})
        assert g.callees("pkg.m.caller") == ["pkg.m.helper"]
        assert g.callers("pkg.m.helper") == ["pkg.m.caller"]

    def test_from_import_resolves_across_modules(self, tmp_path):
        g = build_pkg(tmp_path, {
            "a": "def shared():\n    return 1\n",
            "b": (
                "from pkg.a import shared\n"
                "def caller():\n"
                "    return shared()\n"
            ),
        })
        assert g.callees("pkg.b.caller") == ["pkg.a.shared"]

    def test_self_method_resolves_through_bases(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "class Base:\n"
            "    def step(self):\n"
            "        return 0\n"
            "class Sub(Base):\n"
            "    def run(self):\n"
            "        return self.step()\n"
        )})
        assert g.callees("pkg.m.Sub.run") == ["pkg.m.Base.step"]

    def test_constructor_resolves_to_init(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "def make():\n"
            "    return C()\n"
        )})
        assert g.callees("pkg.m.make") == ["pkg.m.C.__init__"]

    def test_single_hierarchy_virtual_dispatch_fans_out(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "class Op:\n"
            "    def rows(self):\n"
            "        raise NotImplementedError\n"
            "class A(Op):\n"
            "    def rows(self):\n"
            "        return []\n"
            "class B(Op):\n"
            "    def rows(self):\n"
            "        return []\n"
            "def drive(op):\n"
            "    return op.rows()\n"
        )})
        assert g.callees("pkg.m.drive") == [
            "pkg.m.A.rows", "pkg.m.B.rows", "pkg.m.Op.rows",
        ]

    def test_generic_method_names_do_not_capture(self, tmp_path):
        # ``append`` is defined on exactly one class in the tree, but it
        # collides with list.append — an unknown receiver must not bind.
        g = build_pkg(tmp_path, {"m": (
            "class Sink:\n"
            "    def append(self, x):\n"
            "        pass\n"
            "def caller(buf):\n"
            "    buf.append(1)\n"
        )})
        assert g.callees("pkg.m.caller") == []

    def test_unresolved_calls_produce_no_edge(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "import json\n"
            "def caller(x):\n"
            "    return json.dumps(x)\n"
        )})
        assert g.callees("pkg.m.caller") == []


class TestWitnesses:
    def test_witness_to_root_walks_callers(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "def leaf():\n"
            "    return 1\n"
            "def mid():\n"
            "    return leaf()\n"
            "def entry():\n"
            "    return mid()\n"
        )})
        assert g.witness_to_root("pkg.m.leaf") == (
            "pkg.m.entry", "pkg.m.mid", "pkg.m.leaf",
        )

    def test_witness_forward_reaches_goal(self, tmp_path):
        g = build_pkg(tmp_path, {"m": (
            "def leaf():\n"
            "    return 1\n"
            "def mid():\n"
            "    return leaf()\n"
            "def entry():\n"
            "    return mid()\n"
        )})
        assert g.witness_forward(
            "pkg.m.entry", frozenset({"pkg.m.leaf"})
        ) == ("pkg.m.entry", "pkg.m.mid", "pkg.m.leaf")


class TestRealTree:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_callgraph(REPO_SRC / "repro")

    def test_covers_the_whole_tree(self, graph):
        assert len(graph.functions) > 500
        assert len(graph.classes) > 100

    def test_operator_dispatch_fans_out(self, graph):
        rows_defs = [
            q for q in graph.functions if q.endswith("Op.rows")
        ]
        assert len(rows_defs) >= 8

    def test_pull_resolves_from_merge_join(self, graph):
        assert "repro.executor.base.pull" in graph.callees(
            "repro.executor.merge_join.MergeJoinOp.rows"
        )
