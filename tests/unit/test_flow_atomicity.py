"""Unit tests: yield-point atomicity hazards (REPRO100..102)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.flow.atomicity import analyze_races
from repro.analysis.flow.callgraph import CallGraph, build_callgraph

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src"


def build_repro_pkg(tmp_path: Path, modules: dict[str, str]) -> CallGraph:
    """Write ``modules`` (dotted name under ``repro``) and build the
    graph.  Naming the package ``repro`` lets synthetic classes land in
    registry-owner modules like ``repro.storage.buffer``."""
    root = tmp_path / "repro"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("")
    for dotted, source in modules.items():
        parts = dotted.split(".")
        d = root
        for part in parts[:-1]:
            d = d / part
            d.mkdir(exist_ok=True)
            init = d / "__init__.py"
            if not init.exists():
                init.write_text("")
        (d / f"{parts[-1]}.py").write_text(source)
    return build_callgraph(root, package="repro", receiver_types={})


def races(tmp_path, modules):
    return analyze_races(build_repro_pkg(tmp_path, modules))


def rules_of(findings):
    return {f.rule for f in findings}


class TestUnmediatedStores:
    def test_store_through_registered_alias_is_flagged(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def f(pool):\n"
            "    pool.hits = 0\n"
        )})
        assert rules_of(findings) == {"REPRO100"}
        assert "BufferPool.hits" in findings[0].message

    def test_nested_receiver_chain_is_flagged(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "class Runner:\n"
            "    def go(self):\n"
            "        self.db.disk.seq_reads = 0\n"
        )})
        assert rules_of(findings) == {"REPRO100"}
        assert "SimulatedDisk.seq_reads" in findings[0].message

    def test_augmented_store_is_still_unmediated(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def f(clock):\n"
            "    clock.cost_charged += 1\n"
        )})
        assert rules_of(findings) == {"REPRO100"}

    def test_owner_frame_is_exempt(self, tmp_path):
        findings = races(tmp_path, {"storage.buffer": (
            "class BufferPool:\n"
            "    def absorb(self, pool):\n"
            "        pool.hits = 0\n"
        )})
        assert findings == []

    def test_same_store_outside_owner_module_is_not_exempt(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "class BufferPool:\n"  # name collision is not ownership
            "    def absorb(self, pool):\n"
            "        pool.hits = 0\n"
        )})
        assert rules_of(findings) == {"REPRO100"}

    def test_unregistered_attr_is_ignored(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def f(pool):\n"
            "    pool.nickname = 'x'\n"
        )})
        assert findings == []

    def test_load_alone_is_not_a_store(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def f(pool):\n"
            "    return pool.hits\n"
        )})
        assert findings == []


class TestRmwAcrossYield:
    def test_stale_read_modify_write_is_flagged(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def drain(pool):\n"
            "    h = pool.hits\n"
            "    yield 1\n"
            "    pool.hits = h + 1\n"
        )})
        assert "REPRO101" in rules_of(findings)
        [f] = [f for f in findings if f.rule == "REPRO101"]
        assert "crosses" in f.message
        assert f.line == 4

    def test_reload_after_yield_revalidates(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def drain(pool):\n"
            "    h = pool.hits\n"
            "    yield 1\n"
            "    h = pool.hits\n"
            "    pool.hits = h + 1\n"
        )})
        assert "REPRO101" not in rules_of(findings)

    def test_augmented_assignment_is_rmw_safe(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def drain(pool):\n"
            "    h = pool.hits\n"
            "    yield h\n"
            "    pool.hits += 1\n"
        )})
        assert "REPRO101" not in rules_of(findings)

    def test_plain_function_cannot_suspend(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def bump(pool):\n"
            "    h = pool.hits\n"
            "    pool.hits = h + 1\n"
        )})
        assert "REPRO101" not in rules_of(findings)

    def test_store_before_yield_is_fine(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def drain(pool):\n"
            "    h = pool.hits\n"
            "    pool.hits = h + 1\n"
            "    yield 1\n"
        )})
        assert "REPRO101" not in rules_of(findings)


class TestYieldInOwner:
    def test_owner_generator_storing_registered_state(self, tmp_path):
        findings = races(tmp_path, {"storage.buffer": (
            "class BufferPool:\n"
            "    def drain(self):\n"
            "        self.hits = 0\n"
            "        yield 1\n"
        )})
        assert rules_of(findings) == {"REPRO102"}
        assert "BufferPool" in findings[0].message

    def test_atomic_owner_method_is_fine(self, tmp_path):
        findings = races(tmp_path, {"storage.buffer": (
            "class BufferPool:\n"
            "    def reset(self):\n"
            "        self.hits = 0\n"
        )})
        assert findings == []

    def test_owner_generator_touching_unregistered_state(self, tmp_path):
        findings = races(tmp_path, {"storage.buffer": (
            "class BufferPool:\n"
            "    def walk(self):\n"
            "        self.cursor = 0\n"
            "        yield 1\n"
        )})
        assert findings == []


class TestFindingShape:
    def test_witness_names_a_call_path(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def store(pool):\n"
            "    pool.hits = 0\n"
            "def entry(pool):\n"
            "    store(pool)\n"
        )})
        [f] = findings
        assert f.witness == ("repro.util.m.entry", "repro.util.m.store")

    def test_findings_sort_by_path_then_line(self, tmp_path):
        findings = races(tmp_path, {"util.m": (
            "def b(pool):\n"
            "    pool.hits = 0\n"
            "def a(clock):\n"
            "    clock.now = 0.0\n"
        )})
        assert [f.line for f in findings] == [2, 4]


def test_shipped_tree_has_no_atomicity_hazards():
    """The merge gate: the engine's own tree is race-clean."""
    graph = build_callgraph(REPO_SRC / "repro")
    assert analyze_races(graph, repo_root=REPO_ROOT) == []
