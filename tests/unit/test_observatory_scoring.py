"""Unit tests: per-query accuracy scoring (repro.obs.observatory.scoring)."""

from __future__ import annotations

import pytest

from repro.obs.events import (
    QueryCancelled,
    QueryFailed,
    QueryFinished,
    QueryTimedOut,
    ReportEmitted,
)
from repro.obs.observatory import QERROR_FLOOR_SECONDS, score_events


_ACCURATE = object()  # sentinel: "use the perfectly-accurate default"


def report(
    t: float,
    total: float = 100.0,
    est: object = _ACCURATE,
    frac: float | None = None,
    degraded: bool = False,
) -> ReportEmitted:
    """A report at elapsed ``t`` of a ``total``-second run; defaults are
    perfectly accurate (est = actual remaining, frac = t/total).  Pass
    ``est=None`` for a warm-up report with no estimate yet."""
    return ReportEmitted(
        t=t,
        elapsed=t,
        done_pages=t,
        est_cost_pages=total,
        fraction_done=(t / total) if frac is None else frac,
        speed_pages_per_sec=1.0,
        est_remaining_seconds=(total - t) if est is _ACCURATE else est,
        current_segment=0,
        finished=False,
        degraded=degraded,
    )


def finished(total: float = 100.0) -> QueryFinished:
    return QueryFinished(
        t=total, elapsed=total, done_pages=total, actual_cost_pages=total
    )


class TestTerminals:
    def test_perfect_run_scores_cleanly(self):
        events = [report(t) for t in (10.0, 30.0, 50.0, 70.0, 90.0)]
        events.append(finished())
        score = score_events(events)
        assert score.terminal == "finished" and score.scored
        assert score.qerror_geomean == pytest.approx(1.0)
        assert score.qerror_max == pytest.approx(1.0)
        assert score.progress_err_mean == pytest.approx(0.0)
        assert score.progress_err_max == pytest.approx(0.0)
        assert score.monotonicity_violations == 0
        assert score.time_to_within_10 == pytest.approx(0.1)
        assert score.elapsed == 100.0
        assert score.reports_total == score.reports_estimated == 5

    @pytest.mark.parametrize(
        "terminal_event, expected",
        [
            (QueryCancelled(t=50.0, elapsed=50.0, done_pages=10.0,
                            fraction_done=0.5), "cancelled"),
            (QueryTimedOut(t=50.0, elapsed=50.0, done_pages=10.0,
                           fraction_done=0.5), "timed_out"),
            (QueryFailed(t=50.0, elapsed=50.0, done_pages=10.0,
                         fraction_done=0.5, error="boom"), "failed"),
        ],
    )
    def test_non_finished_terminals_are_coverage_only(
        self, terminal_event, expected
    ):
        events = [report(10.0), report(30.0), terminal_event]
        score = score_events(events)
        assert score.terminal == expected
        assert not score.scored
        assert score.qerror_geomean is None
        # ...but the reports still count toward coverage statistics.
        assert score.reports_total == 2
        assert score.reports_estimated == 2

    def test_unterminated_trace_is_not_scored(self):
        score = score_events([report(10.0)])
        assert score.terminal == "unterminated"
        assert not score.scored

    def test_empty_trace(self):
        score = score_events([])
        assert score.terminal == "unterminated"
        assert not score.scored
        assert score.reports_total == 0


class TestDegradedReports:
    def test_degraded_reports_are_excluded_but_counted(self):
        clean = [report(t) for t in (10.0, 50.0, 90.0)]
        # A wildly wrong degraded fallback must not move any error metric.
        poisoned = clean + [
            report(60.0, est=1e6, frac=0.0, degraded=True)
        ]
        base = score_events(clean + [finished()])
        score = score_events(poisoned + [finished()])
        assert score.reports_total == 4
        assert score.reports_degraded == 1
        assert score.reports_estimated == 3
        assert score.qerror_geomean == base.qerror_geomean
        assert score.qerror_max == base.qerror_max
        assert score.progress_err_max == base.progress_err_max
        assert score.monotonicity_violations == base.monotonicity_violations

    def test_all_degraded_means_not_scored(self):
        events = [report(t, degraded=True) for t in (10.0, 50.0)]
        events.append(finished())
        score = score_events(events)
        assert not score.scored
        assert score.terminal == "finished"
        assert score.reports_total == score.reports_degraded == 2


class TestMetrics:
    def test_qerror_measures_symmetric_ratio(self):
        # est 2x the actual remaining and actual 2x the estimate both
        # score a q-error of 2.
        over = [report(50.0, est=100.0), finished()]
        under = [report(50.0, est=25.0), finished()]
        assert score_events(over).qerror_max == pytest.approx(2.0)
        assert score_events(under).qerror_max == pytest.approx(2.0)

    def test_qerror_floor_forgives_the_tail(self):
        # With 0.5s actually remaining and a 0.2s estimate, both operands
        # floor to 1s: the tail of a run cannot explode the ratio.
        events = [report(99.5, est=0.2), finished()]
        assert score_events(events).qerror_max == pytest.approx(1.0)
        assert QERROR_FLOOR_SECONDS == 1.0

    def test_warmup_reports_score_progress_but_not_qerror(self):
        events = [
            report(10.0, est=None),  # warm-up: no estimate yet
            report(50.0),
            finished(),
        ]
        score = score_events(events)
        assert score.reports_estimated == 1
        assert score.qerror_geomean == pytest.approx(1.0)
        # The warm-up report still participates in progress error.
        assert score.progress_err_mean == pytest.approx(0.0)

    def test_monotonicity_violations_counted(self):
        events = [
            report(10.0, frac=0.10),
            report(30.0, frac=0.40),
            report(50.0, frac=0.35),  # regression!
            report(70.0, frac=0.70),
            report(90.0, frac=0.69),  # regression!
            finished(),
        ]
        assert score_events(events).monotonicity_violations == 2

    def test_time_to_within_10_requires_a_suffix_streak(self):
        # In band at t=10, out at t=50, back in from t=70: the streak
        # must hold to the end, so lock-on is at 0.7.
        events = [
            report(10.0),
            report(50.0, est=90.0),  # |90 - 50| > 10% band
            report(70.0),
            report(90.0),
            finished(),
        ]
        assert score_events(events).time_to_within_10 == pytest.approx(0.7)

    def test_time_to_within_10_never_locks(self):
        events = [report(50.0, est=500.0), finished()]
        assert score_events(events).time_to_within_10 == 1.0
