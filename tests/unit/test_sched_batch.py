"""Scheduler × batch engine: quantum slicing sees identical boundaries.

The batch engine moves rows in :class:`Batch` containers but must flush
every batch *before* yielding ``PULSE`` — the scheduler only observes
charge state at pulses, so batching may never stretch a work quantum.
These tests pin that interaction: batch sizes are capped by
``batch_rows``, quantum budgets still bound every slice, and a 16-query
concurrent run keeps the cooperative guarantees (exactly one terminal
state per task, monotone per-task indicators) with the *identical*
virtual-time interleaving the row engine produces.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.executor.base import PULSE, ExecContext
from repro.executor.batch import Batch
from repro.executor.runtime import execute
from repro.sched import FINISHED, CooperativeScheduler
from repro.workloads import queries, tpcr

#: Slice reasons that end a task for good.
_TERMINAL_REASONS = {"finished", "failed", "timeout", "cancelled"}


def _db(engine="batch", batch_rows=None, scale=0.002):
    progress = {"engine": engine}
    if batch_rows is not None:
        progress["batch_rows"] = batch_rows
    config = SystemConfig().with_progress(**progress)
    return tpcr.build_database(scale=scale, subset_rows=60, config=config)


def _sixteen(sched):
    """Submit the 16-query mixed workload (4 × Q1/Q2/Q3/Q5)."""
    tasks = []
    for i in range(16):
        sql = (queries.Q1, queries.Q2, queries.Q3, queries.Q5)[i % 4]
        tasks.append(sched.submit(sql, name=f"q{i:02d}", keep_rows=False))
    return tasks


class TestBatchBounds:
    def test_batches_never_exceed_batch_rows(self):
        db = _db(batch_rows=32)
        planned = db.prepare(queries.Q2)
        ctx = ExecContext(db.clock, db.disk, db.buffer_pool, db.config)
        sizes = []
        for item in execute(planned, ctx):
            if item is PULSE:
                continue
            assert type(item) is Batch
            sizes.append(len(item))
        assert sizes, "the batch engine should have produced batches"
        assert all(1 <= size <= 32 for size in sizes)

    def test_batches_flush_before_every_pulse(self):
        # An oversized batch_rows forces every flush to come from a PULSE
        # boundary: each batch must be immediately followed by the pulse
        # that flushed it, never held across one.
        db = _db(batch_rows=1 << 20)
        planned = db.prepare(queries.Q1)
        ctx = ExecContext(db.clock, db.disk, db.buffer_pool, db.config)
        items = list(execute(planned, ctx))
        for i, item in enumerate(items):
            if type(item) is Batch:
                assert i + 1 == len(items) or items[i + 1] is PULSE

    def test_quantum_bounds_slices_under_batching(self):
        sched = CooperativeScheduler(_db(), quantum_pages=2)
        task = sched.submit(queries.Q1, name="a", keep_rows=False)
        sched.run()
        for record in task.slices:
            if record.reason == "quantum":
                assert record.pages <= sched.quantum_pages + 1


class TestSixteenQueryWorkload:
    def test_one_terminal_state_per_task_and_monotone_indicators(self):
        sched = CooperativeScheduler(_db())
        tasks = _sixteen(sched)
        sched.run()
        for task in tasks:
            assert task.state == FINISHED
            terminal = [
                s for s in task.slices if s.reason in _TERMINAL_REASONS
            ]
            assert len(terminal) == 1
            assert terminal[0].reason == "finished"
            assert terminal[0] is task.slices[-1]
            # Monotone indicator: work done and completed fraction only
            # ever grow across the task's report history.
            assert task.log is not None
            reports = list(task.log)
            assert reports, "a monitored task records reports"
            for prev, cur in zip(reports, reports[1:]):
                assert cur.done_pages >= prev.done_pages
                assert cur.fraction_done >= prev.fraction_done
            assert reports[-1].finished

    def test_interleaving_is_bit_identical_to_the_row_engine(self):
        """Virtual-time scheduling cannot tell the engines apart.

        Both engines charge the same virtual costs and pulse at the same
        points, so 16 interleaved queries produce the *identical* slice
        sequence — same order, same virtual timestamps, same page and
        pulse counts — and the same per-task row counts.
        """
        runs = {}
        for engine in ("row", "batch"):
            sched = CooperativeScheduler(_db(engine=engine))
            tasks = _sixteen(sched)
            sched.run()
            runs[engine] = (
                [
                    (s.seq, s.task, s.started_at, s.ended_at, s.pulses,
                     s.pages, s.reason)
                    for s in sched.slices
                ],
                {t.name: t.row_count for t in tasks},
            )
        assert runs["batch"][0] == runs["row"][0]
        assert runs["batch"][1] == runs["row"][1]
