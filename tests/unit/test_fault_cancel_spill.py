"""Unit tests: cancellation/timeout while spilled state is on disk.

External sorts write run files and Grace hash joins write partition
files; a query unwound mid-pass (cancel or watchdog timeout) must
discard those temp runs, release every buffer pin, and leave exactly
one terminal trace event.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import ProgressError, QueryTimeoutError
from repro.sched.task import CANCELLED, TIMED_OUT
from repro.workloads import queries, tpcr

#: Forces Q2's hash joins to partition and the sort below to spill runs.
SORT_SQL = "select * from lineitem order by extendedprice"


def _db():
    return tpcr.build_database(
        scale=0.002,
        subset_rows=60,
        config=SystemConfig(work_mem_pages=4, buffer_pool_pages=32),
    )


def _drive_until_spilled(db, session, handle, max_steps=5000):
    """Step the scheduler until the query has temp files on disk."""
    for _ in range(max_steps):
        assert session.step() is not None, "query drained without spilling"
        if db.disk.temp_file_count() > 0:
            assert not handle.done
            return
    raise AssertionError("never spilled")


class TestCancelDuringSpill:
    def test_cancel_mid_external_sort_discards_runs(self):
        db = _db()
        session = db.connect()
        handle = session.submit(SORT_SQL, name="sorter", trace=True)
        _drive_until_spilled(db, session, handle)

        handle.cancel()

        assert handle.state == CANCELLED
        assert db.disk.temp_file_count() == 0
        assert db.buffer_pool.pinned_count == 0
        assert handle.trace().counts().get("query_cancelled") == 1
        with pytest.raises(ProgressError, match="cancelled"):
            handle.result()

    def test_cancel_mid_hash_partitioning_discards_partitions(self):
        db = _db()
        session = db.connect()
        handle = session.submit(queries.Q2, name="joiner", trace=True)
        _drive_until_spilled(db, session, handle)

        handle.cancel()

        assert handle.state == CANCELLED
        assert db.disk.temp_file_count() == 0
        assert db.buffer_pool.pinned_count == 0
        counts = handle.trace().counts()
        assert counts.get("query_cancelled") == 1
        assert "query_finished" not in counts

    def test_cancelled_spill_leaves_siblings_running(self):
        db = _db()
        session = db.connect()
        spiller = session.submit(queries.Q2, name="spiller", trace=True)
        scanner = session.submit(queries.Q1, name="scanner", keep_rows=False)
        _drive_until_spilled(db, session, spiller)
        spiller.cancel()
        assert scanner.result().row_count > 0
        assert db.disk.temp_file_count() == 0


class TestTimeoutDuringSpill:
    def test_timeout_mid_external_sort_discards_runs(self):
        db = _db()
        session = db.connect()
        handle = session.submit(SORT_SQL, name="sorter", trace=True)
        _drive_until_spilled(db, session, handle)

        # Arm an already-expired deadline; the next slice's PULSE (or the
        # watchdog sweep) unwinds the query mid-spill.
        handle.task.deadline = db.clock.now
        with pytest.raises(QueryTimeoutError):
            handle.result()

        assert handle.state == TIMED_OUT
        assert db.disk.temp_file_count() == 0
        assert db.buffer_pool.pinned_count == 0
        assert handle.trace().counts().get("query_timed_out") == 1

    def test_timeout_mid_hash_partitioning_discards_partitions(self):
        db = _db()
        session = db.connect()
        handle = session.submit(queries.Q4, name="joiner", trace=True)
        _drive_until_spilled(db, session, handle)

        handle.task.deadline = db.clock.now
        with pytest.raises(QueryTimeoutError):
            handle.result()

        assert handle.state == TIMED_OUT
        assert db.disk.temp_file_count() == 0
        assert db.buffer_pool.pinned_count == 0
        counts = handle.trace().counts()
        assert counts.get("query_timed_out") == 1
        assert "query_finished" not in counts

    def test_final_report_keeps_finished_false(self):
        db = _db()
        session = db.connect()
        handle = session.submit(SORT_SQL, name="sorter", trace=True)
        _drive_until_spilled(db, session, handle)
        handle.task.deadline = db.clock.now
        with pytest.raises(QueryTimeoutError):
            handle.result()
        log = handle.log
        assert log is not None
        assert not log.reports[-1].finished
