"""Unit tests for load profiles."""

import math

import pytest

from repro.sim.load import CPU, IO, InterferenceWindow, LoadProfile


class TestInterferenceWindow:
    def test_factor_by_resource(self):
        w = InterferenceWindow(0.0, 10.0, io_factor=2.0, cpu_factor=3.0)
        assert w.factor(IO) == 2.0
        assert w.factor(CPU) == 3.0

    def test_unknown_resource_rejected(self):
        w = InterferenceWindow(0.0, 10.0)
        with pytest.raises(ValueError):
            w.factor("gpu")

    def test_active_at_half_open_interval(self):
        w = InterferenceWindow(5.0, 10.0, io_factor=2.0)
        assert not w.active_at(4.999)
        assert w.active_at(5.0)
        assert w.active_at(9.999)
        assert not w.active_at(10.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            InterferenceWindow(5.0, 5.0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            InterferenceWindow(0.0, 1.0, io_factor=0.0)

    def test_infinite_end_allowed(self):
        w = InterferenceWindow(100.0, math.inf, cpu_factor=2.0)
        assert w.active_at(1e12)


class TestLoadProfile:
    def test_unloaded_factor_is_one(self):
        profile = LoadProfile.unloaded()
        assert profile.factor(0.0, IO) == 1.0
        assert profile.factor(1e9, CPU) == 1.0

    def test_factor_inside_and_outside_window(self):
        profile = LoadProfile.file_copy(10.0, 20.0, slowdown=3.0)
        assert profile.factor(5.0, IO) == 1.0
        assert profile.factor(15.0, IO) == 3.0
        assert profile.factor(25.0, IO) == 1.0

    def test_file_copy_leaves_cpu_alone(self):
        profile = LoadProfile.file_copy(10.0, 20.0, slowdown=3.0)
        assert profile.factor(15.0, CPU) == 1.0

    def test_cpu_hog_leaves_io_alone(self):
        profile = LoadProfile.cpu_hog(10.0, slowdown=2.5)
        assert profile.factor(15.0, IO) == 1.0
        assert profile.factor(15.0, CPU) == 2.5

    def test_next_change_after(self):
        profile = LoadProfile.file_copy(10.0, 20.0)
        assert profile.next_change_after(0.0) == 10.0
        assert profile.next_change_after(10.0) == 20.0
        assert profile.next_change_after(20.0) == math.inf

    def test_next_change_with_infinite_end(self):
        profile = LoadProfile.cpu_hog(100.0)
        assert profile.next_change_after(0.0) == 100.0
        assert profile.next_change_after(100.0) == math.inf

    def test_overlapping_windows_multiply(self):
        profile = LoadProfile(
            [
                InterferenceWindow(0.0, 10.0, io_factor=2.0),
                InterferenceWindow(5.0, 15.0, io_factor=4.0),
            ]
        )
        assert profile.factor(7.0, IO) == 8.0
        assert profile.factor(12.0, IO) == 4.0

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile.unloaded().factor(0.0, "net")
