"""Unit tests for the TPC-R workload generators."""

import pytest

from repro.workloads import correlated, queries, tpcr


class TestGenerator:
    def test_row_counts_scale(self):
        tables = tpcr.generate_tables(scale=0.002, subset_rows=60)
        counts = tables.row_counts()
        assert counts["customer"] == 300
        assert counts["orders"] == 3000
        assert counts["lineitem"] == 12000
        assert counts["customer_subset1"] == 60
        assert counts["customer_subset2"] == 60

    def test_paper_ratios(self):
        # 10 orders per customer, 4 lineitems per order (Section 5.1).
        tables = tpcr.generate_tables(scale=0.002)
        assert len(tables.orders) == 10 * len(tables.customer)
        assert len(tables.lineitem) == 4 * len(tables.orders)

    def test_custkeys_unique(self):
        tables = tpcr.generate_tables(scale=0.002)
        keys = [c[0] for c in tables.customer]
        assert len(set(keys)) == len(keys)

    def test_orderkeys_unique(self):
        tables = tpcr.generate_tables(scale=0.002)
        keys = [o[0] for o in tables.orders]
        assert len(set(keys)) == len(keys)

    def test_foreign_keys_valid(self):
        tables = tpcr.generate_tables(scale=0.002)
        custkeys = {c[0] for c in tables.customer}
        assert all(o[1] in custkeys for o in tables.orders)
        orderkeys = {o[0] for o in tables.orders}
        assert all(l[0] in orderkeys for l in tables.lineitem)

    def test_deterministic_by_seed(self):
        a = tpcr.generate_tables(scale=0.002, seed=7)
        b = tpcr.generate_tables(scale=0.002, seed=7)
        assert a.customer == b.customer
        assert a.orders == b.orders

    def test_different_seed_differs(self):
        a = tpcr.generate_tables(scale=0.002, seed=7)
        b = tpcr.generate_tables(scale=0.002, seed=8)
        assert a.customer != b.customer

    def test_subsets_have_distinct_keys(self):
        tables = tpcr.generate_tables(scale=0.002, subset_rows=50)
        k1 = {c[0] for c in tables.customer_subset1}
        k2 = {c[0] for c in tables.customer_subset2}
        assert not (k1 & k2)

    def test_nationkeys_in_range(self):
        tables = tpcr.generate_tables(scale=0.002)
        assert all(0 <= c[3] < 25 for c in tables.customer)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            tpcr.generate_tables(scale=0.0)


class TestBuildDatabase:
    def test_five_tables_created(self, tiny_tpcr):
        names = {t.name for t in tiny_tpcr.catalog.tables()}
        assert names == {
            "customer",
            "orders",
            "lineitem",
            "customer_subset1",
            "customer_subset2",
        }

    def test_statistics_collected(self, tiny_tpcr):
        for table in tiny_tpcr.catalog.tables():
            assert table.statistics is not None
            assert table.statistics.row_count == table.num_tuples

    def test_indexes_optional(self):
        db = tpcr.build_database(scale=0.001, with_indexes=True, subset_rows=20)
        assert db.catalog.get_table("orders").index_on("orderkey") is not None


class TestCorrelatedData:
    def test_fanout_by_nationkey_band(self):
        rng_tables = tpcr.generate_tables(
            scale=0.002,
            orders_per_customer_fn=correlated.correlated_orders_per_customer,
        )
        per_customer = {}
        for o in rng_tables.orders:
            per_customer[o[1]] = per_customer.get(o[1], 0) + 1
        for c in rng_tables.customer:
            expected = correlated.correlated_orders_per_customer(c)
            assert per_customer.get(c[0], 0) == expected

    def test_average_fanout_stays_ten(self):
        tables = tpcr.generate_tables(
            scale=0.01,
            orders_per_customer_fn=correlated.correlated_orders_per_customer,
        )
        avg = len(tables.orders) / len(tables.customer)
        assert avg == pytest.approx(10.0, rel=0.15)

    def test_build_database_wrapper(self):
        db = correlated.build_database(scale=0.001, subset_rows=20)
        assert db.catalog.get_table("orders").num_tuples > 0


class TestQueries:
    def test_all_queries_parse_and_plan(self, tiny_tpcr, tpcr_queries):
        for sql in tpcr_queries.values():
            planned = tiny_tpcr.prepare(sql)
            assert planned.root is not None

    def test_query_dict_complete(self):
        assert set(queries.PAPER_QUERIES) == {"Q1", "Q2", "Q3", "Q4", "Q5"}
