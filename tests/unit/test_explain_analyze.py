"""Unit tests for EXPLAIN / EXPLAIN ANALYZE."""

import pytest

from repro.workloads import queries, tpcr


@pytest.fixture(scope="module")
def db():
    return tpcr.build_database(scale=0.002)


class TestExplainAnalyze:
    def test_actual_rows_rendered_per_operator(self, db):
        text = db.explain_analyze(queries.Q1)
        assert text.count("actual rows=") >= 2  # scan + project

    def test_exposes_cardinality_misestimates(self, db):
        # The lineitem default selectivity: est ~1/3 of actual.
        text = db.explain_analyze(queries.Q2)
        lineitem_line = next(
            line for line in text.splitlines() if "lineitem" in line
        )
        assert "rows=4000" in lineitem_line
        assert "actual rows=12000" in lineitem_line

    def test_accurate_estimates_match(self, db):
        text = db.explain_analyze("select custkey from customer")
        scan_line = next(
            line for line in text.splitlines() if "SeqScan" in line
        )
        assert "(rows=300 width=" in scan_line
        assert "actual rows=300" in scan_line

    def test_execution_summary_appended(self, db):
        text = db.explain_analyze("select count(*) from orders")
        assert "Execution: 1 rows in" in text

    def test_limit_shows_short_circuit(self, db):
        text = db.explain_analyze("select custkey from customer limit 7")
        limit_line = next(l for l in text.splitlines() if "Limit" in l)
        assert "actual rows=7" in limit_line

    def test_counting_does_not_change_results(self, db):
        plain = db.execute(queries.Q2, keep_rows=False)
        analyzed = db.explain_analyze(queries.Q2)
        assert f"Execution: {plain.row_count} rows" in analyzed

    def test_plain_explain_has_no_actuals(self, db):
        text = db.explain(queries.Q1)
        assert "actual rows" not in text
        assert "SeqScan(lineitem)" in text
