"""Unit tests for GROUP BY / HAVING / aggregate functions.

Aggregation is the paper's "wider classes of queries" extension (Section
6, future work 3): the hash aggregate is one more blocking operator, so
the segment model covers grouped queries with no new machinery.
"""

from collections import defaultdict

import pytest

from repro.database import Database
from repro.errors import BindError
from repro.planner.physical import FilterNode, HashAggregateNode
from repro.storage.schema import Column, Schema
from repro.storage.types import FLOAT, INTEGER, string


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "sales",
        Schema(
            [
                Column("region", string(10)),
                Column("product", INTEGER),
                Column("amount", FLOAT),
            ]
        ),
        [
            ("north", i % 5, float(10 * i % 97)) for i in range(200)
        ]
        + [("south", i % 3, float(7 * i % 53)) for i in range(100)],
    )
    database.analyze()
    return database


def find(root, node_type):
    out = []

    def walk(n):
        if isinstance(n, node_type):
            out.append(n)
        for c in n.children:
            walk(c)

    walk(root)
    return out


class TestAggregateResults:
    def test_count_star(self, db):
        result = db.execute("select count(*) from sales")
        assert result.rows == [(300,)]

    def test_count_column_skips_nulls(self):
        database = Database()
        database.create_table(
            "t", Schema([Column("x", INTEGER)]), [(1,), (None,), (3,), (None,)]
        )
        database.analyze()
        result = database.execute("select count(x), count(*) from t")
        assert result.rows == [(2, 4)]

    def test_sum_avg_min_max(self, db):
        result = db.execute(
            "select sum(amount), avg(amount), min(amount), max(amount) from sales"
        )
        rows = [r for r in db.catalog.get_table("sales").heap.iter_rows()]
        amounts = [r[2] for r in rows]
        total, avg = sum(amounts), sum(amounts) / len(amounts)
        got = result.rows[0]
        assert got[0] == pytest.approx(total)
        assert got[1] == pytest.approx(avg)
        assert got[2] == min(amounts)
        assert got[3] == max(amounts)

    def test_group_by_matches_brute_force(self, db):
        result = db.execute(
            "select region, product, count(*), sum(amount) from sales "
            "group by region, product"
        )
        expected = defaultdict(lambda: [0, 0.0])
        for region, product, amount in db.catalog.get_table("sales").heap.iter_rows():
            expected[(region, product)][0] += 1
            expected[(region, product)][1] += amount
        assert len(result.rows) == len(expected)
        for region, product, count, total in result.rows:
            want = expected[(region, product)]
            assert count == want[0]
            assert total == pytest.approx(want[1])

    def test_having_filters_groups(self, db):
        result = db.execute(
            "select product, count(*) from sales group by product "
            "having count(*) > 50"
        )
        assert result.rows
        assert all(count > 50 for _, count in result.rows)

    def test_order_by_aggregate(self, db):
        result = db.execute(
            "select product, count(*) from sales group by product "
            "order by count(*) desc"
        )
        counts = [c for _, c in result.rows]
        assert counts == sorted(counts, reverse=True)

    def test_aggregate_on_empty_input_global(self, db):
        result = db.execute("select count(*), sum(amount) from sales where amount < -1")
        assert result.rows == [(0, None)]

    def test_aggregate_on_empty_input_grouped(self, db):
        result = db.execute(
            "select region, count(*) from sales where amount < -1 group by region"
        )
        assert result.rows == []

    def test_arithmetic_over_aggregates(self, db):
        result = db.execute("select sum(amount) / count(*) from sales")
        check = db.execute("select avg(amount) from sales")
        assert result.rows[0][0] == pytest.approx(check.rows[0][0])

    def test_group_by_join_result(self, db):
        database = Database()
        database.create_table(
            "a", Schema([Column("k", INTEGER), Column("g", INTEGER)]),
            [(i, i % 4) for i in range(40)],
        )
        database.create_table(
            "b", Schema([Column("k", INTEGER), Column("v", FLOAT)]),
            [(i % 40, float(i)) for i in range(120)],
        )
        database.analyze()
        result = database.execute(
            "select a.g, count(*) from a, b where a.k = b.k group by a.g"
        )
        assert sorted(result.rows) == [(0, 30), (1, 30), (2, 30), (3, 30)]


class TestAggregatePlanning:
    def test_plan_contains_aggregate_node(self, db):
        plan = db.prepare("select region, count(*) from sales group by region")
        nodes = find(plan.root, HashAggregateNode)
        assert len(nodes) == 1
        assert len(nodes[0].group_keys) == 1

    def test_having_becomes_filter_node(self, db):
        plan = db.prepare(
            "select region, count(*) from sales group by region having count(*) > 10"
        )
        assert find(plan.root, FilterNode)

    def test_group_estimate_uses_distinct_count(self, db):
        plan = db.prepare("select region, count(*) from sales group by region")
        agg = find(plan.root, HashAggregateNode)[0]
        assert agg.est_rows == pytest.approx(2.0)  # north/south

    def test_duplicate_aggregates_share_one_slot(self, db):
        plan = db.prepare(
            "select count(*), count(*) + 1 from sales"
        )
        agg = find(plan.root, HashAggregateNode)[0]
        assert len(agg.aggregates) == 1


class TestAggregateBinding:
    def test_bare_column_outside_group_rejected(self, db):
        with pytest.raises(BindError, match="GROUP BY"):
            db.prepare("select region, amount from sales group by region")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(BindError, match="WHERE"):
            db.prepare("select region from sales where count(*) > 1 group by region")

    def test_nested_aggregate_rejected(self, db):
        with pytest.raises(BindError, match="nested"):
            db.prepare("select sum(count(*)) from sales group by region")

    def test_star_only_for_count(self, db):
        with pytest.raises(BindError):
            db.prepare("select sum(*) from sales")

    def test_sum_requires_numeric(self, db):
        with pytest.raises(BindError, match="numeric"):
            db.prepare("select sum(region) from sales")

    def test_having_requires_boolean(self, db):
        with pytest.raises(BindError, match="HAVING"):
            db.prepare(
                "select region from sales group by region having count(*) + 1"
            )

    def test_group_by_expression_rejected(self, db):
        with pytest.raises(BindError, match="plain column"):
            db.prepare("select count(*) from sales group by product + 1")


class TestAggregateProgress:
    def test_monitored_matches_plain(self, db):
        sql = (
            "select region, product, count(*), avg(amount) from sales "
            "group by region, product order by region, product"
        )
        plain = db.execute(sql)
        db.restart()
        monitored = db.execute_with_progress(sql, keep_rows=True)
        assert monitored.result.rows == plain.rows

    def test_aggregate_is_a_segment_boundary(self, db):
        monitored = db.execute_with_progress(
            "select region, count(*) from sales group by region"
        )
        labels = [s.label for s in monitored.indicator.segments]
        assert any("aggregate" in label for label in labels)
        assert monitored.log.final().percent_done == pytest.approx(100.0)

    def test_group_output_counted_as_segment_output(self, db):
        monitored = db.execute_with_progress(
            "select region, count(*) from sales group by region"
        )
        agg_seg = next(
            s for s in monitored.indicator.segments if "aggregate" in s.label
        )
        counters = monitored.indicator.tracker.segments[agg_seg.id]
        assert counters.output_rows == 2  # north, south
