"""Unit tests for selectivity estimation."""

import pytest

from repro.config import DEFAULT_UNKNOWN_SELECTIVITY
from repro.expr.bound import as_conjuncts
from repro.planner.selectivity import (
    constant_value,
    filter_selectivity,
    is_constant,
    join_predicate_selectivity,
)
from repro.sql.binder import Binder
from repro.sql.parser import parse_select


def conjuncts_for(db, sql):
    bound = Binder(db.catalog).bind(parse_select(sql))

    def lookup(coordinate):
        table_index, column_index = coordinate
        table = bound.tables[table_index].table
        if table.statistics is None:
            return None
        name = table.schema.columns[column_index].name
        return table.statistics.column(name)

    return bound.conjuncts, lookup


DEFAULT = DEFAULT_UNKNOWN_SELECTIVITY


class TestFilterSelectivity:
    def test_eq_uses_distinct_count(self, small_db):
        # t1.b has 10 distinct values.
        conjs, lookup = conjuncts_for(small_db, "select a from t1 where b = 3")
        assert filter_selectivity(conjs[0], lookup, DEFAULT) == pytest.approx(0.1)

    def test_range_uses_histogram(self, small_db):
        # t1.a is uniform over [0, 100).
        conjs, lookup = conjuncts_for(small_db, "select a from t1 where a < 50")
        sel = filter_selectivity(conjs[0], lookup, DEFAULT)
        assert sel == pytest.approx(0.5, abs=0.1)

    def test_reversed_comparison_normalized(self, small_db):
        conjs, lookup = conjuncts_for(small_db, "select a from t1 where 50 > a")
        sel = filter_selectivity(conjs[0], lookup, DEFAULT)
        assert sel == pytest.approx(0.5, abs=0.1)

    def test_function_predicate_gets_default(self, small_db):
        # The paper's key mechanism: absolute(x) > 0 is unestimatable.
        conjs, lookup = conjuncts_for(
            small_db, "select a from t1 where absolute(a) > 0"
        )
        assert filter_selectivity(conjs[0], lookup, DEFAULT) == DEFAULT

    def test_and_multiplies(self, small_db):
        conjs, lookup = conjuncts_for(
            small_db, "select a from t1 where b = 3 and a < 50"
        )
        combined = 1.0
        for c in conjs:
            combined *= filter_selectivity(c, lookup, DEFAULT)
        assert combined == pytest.approx(0.05, abs=0.02)

    def test_or_inclusion_exclusion(self, small_db):
        conjs, lookup = conjuncts_for(
            small_db, "select a from t1 where b = 3 or b = 4"
        )
        sel = filter_selectivity(conjs[0], lookup, DEFAULT)
        assert sel == pytest.approx(0.1 + 0.1 - 0.01)

    def test_not_complements(self, small_db):
        conjs, lookup = conjuncts_for(small_db, "select a from t1 where not b = 3")
        assert filter_selectivity(conjs[0], lookup, DEFAULT) == pytest.approx(0.9)

    def test_no_stats_falls_back_to_default(self, small_db):
        conjs, _ = conjuncts_for(small_db, "select a from t1 where b = 3")
        assert filter_selectivity(conjs[0], lambda c: None, DEFAULT) == DEFAULT

    def test_constant_arithmetic_folded(self, small_db):
        conjs, lookup = conjuncts_for(
            small_db, "select a from t1 where a < 25 + 25"
        )
        sel = filter_selectivity(conjs[0], lookup, DEFAULT)
        assert sel == pytest.approx(0.5, abs=0.1)


class TestJoinSelectivity:
    def test_equijoin_one_over_max_distinct(self, small_db):
        # t1.a has 100 distinct values, t2.a has 50.
        conjs, lookup = conjuncts_for(
            small_db, "select t1.a from t1, t2 where t1.a = t2.a"
        )
        sel = join_predicate_selectivity(conjs[0], lookup, DEFAULT)
        assert sel == pytest.approx(0.01)

    def test_inequality_join_complements(self, small_db):
        conjs, lookup = conjuncts_for(
            small_db, "select t1.a from t1, t2 where t1.a <> t2.a"
        )
        sel = join_predicate_selectivity(conjs[0], lookup, DEFAULT)
        assert sel == pytest.approx(0.99)

    def test_range_join_gets_default(self, small_db):
        conjs, lookup = conjuncts_for(
            small_db, "select t1.a from t1, t2 where t1.a < t2.a"
        )
        assert join_predicate_selectivity(conjs[0], lookup, DEFAULT) == DEFAULT


class TestConstantFolding:
    def test_is_constant(self, small_db):
        conjs, _ = conjuncts_for(small_db, "select a from t1 where a < 5 + 5")
        assert not is_constant(conjs[0].left)
        assert is_constant(conjs[0].right)

    def test_constant_value(self, small_db):
        conjs, _ = conjuncts_for(small_db, "select a from t1 where a < 5 + 5")
        assert constant_value(conjs[0].right) == 10

    def test_constant_value_rejects_columns(self, small_db):
        conjs, _ = conjuncts_for(small_db, "select a from t1 where a < 5")
        with pytest.raises(ValueError):
            constant_value(conjs[0].left)
