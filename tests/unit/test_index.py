"""Unit tests for the B-tree-style index."""

import pytest

from repro.config import CostModelConfig
from repro.errors import StorageError
from repro.sim.clock import VirtualClock
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.index import BTreeIndex
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string


@pytest.fixture
def heap():
    disk = SimulatedDisk(VirtualClock(), CostModelConfig())
    schema = Schema([Column("k", INTEGER), Column("s", string(20))])
    h = HeapFile("t", schema, disk, page_size=256)
    # Keys inserted out of order, with duplicates and one NULL.
    rows = [(k, f"v{k}") for k in (5, 3, 9, 1, 7, 3, 8)] + [(None, "null")]
    h.bulk_load(rows)
    return h


class TestBTreeIndex:
    def test_build_skips_nulls(self, heap):
        index = BTreeIndex("idx", heap, "k")
        assert index.num_entries == 7  # NULL key not indexed

    def test_search_eq_single(self, heap):
        index = BTreeIndex("idx", heap, "k")
        rids = index.search_eq(9)
        assert len(rids) == 1
        assert index.fetch(rids[0])[0] == 9

    def test_search_eq_duplicates(self, heap):
        index = BTreeIndex("idx", heap, "k")
        assert len(index.search_eq(3)) == 2

    def test_search_eq_missing(self, heap):
        index = BTreeIndex("idx", heap, "k")
        assert index.search_eq(42) == []

    def test_range_inclusive(self, heap):
        index = BTreeIndex("idx", heap, "k")
        keys = [k for k, _ in index.search_range(3, 7)]
        assert keys == [3, 3, 5, 7]

    def test_range_exclusive(self, heap):
        index = BTreeIndex("idx", heap, "k")
        keys = [
            k
            for k, _ in index.search_range(3, 7, low_inclusive=False, high_inclusive=False)
        ]
        assert keys == [5]

    def test_range_open_ended(self, heap):
        index = BTreeIndex("idx", heap, "k")
        assert [k for k, _ in index.search_range(low=8)] == [8, 9]
        assert [k for k, _ in index.search_range(high=3)] == [1, 3, 3]

    def test_full_range_sorted(self, heap):
        index = BTreeIndex("idx", heap, "k")
        keys = [k for k, _ in index.search_range()]
        assert keys == sorted(keys)

    def test_count_range(self, heap):
        index = BTreeIndex("idx", heap, "k")
        assert index.count_range(1, 5) == 4

    def test_height_at_least_one(self, heap):
        index = BTreeIndex("idx", heap, "k")
        assert index.height >= 1

    def test_height_grows_with_entries(self):
        disk = SimulatedDisk(VirtualClock(), CostModelConfig())
        schema = Schema([Column("k", INTEGER)])
        h = HeapFile("big", schema, disk, page_size=8192)
        h.bulk_load([(i,) for i in range(600_000)])
        index = BTreeIndex("idx", h, "k", page_size=8192)
        assert index.height >= 2

    def test_leaf_pages_for(self, heap):
        index = BTreeIndex("idx", heap, "k")
        assert index.leaf_pages_for(0) == 0
        assert index.leaf_pages_for(1) == 1
        assert index.leaf_pages_for(index.fanout + 1) == 2

    def test_fetch_dangling_rid_raises(self, heap):
        index = BTreeIndex("idx", heap, "k")
        with pytest.raises(StorageError):
            index.fetch((99, 0))

    def test_string_keys(self):
        disk = SimulatedDisk(VirtualClock(), CostModelConfig())
        schema = Schema([Column("name", string(10))])
        h = HeapFile("s", schema, disk, page_size=256)
        h.bulk_load([("bob",), ("alice",), ("carol",)])
        index = BTreeIndex("idx", h, "name")
        assert [k for k, _ in index.search_range()] == ["alice", "bob", "carol"]
