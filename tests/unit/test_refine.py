"""Unit tests for the Section 4.3/4.5 refinement logic."""

import pytest

from repro.core.segments import SegmentInput, SegmentSpec
from repro.estimators.refinement import PaperEstimator
from repro.executor.work import WorkTracker


def make_spec(
    seg_id=0,
    inputs=None,
    est_out=100.0,
    out_width=50.0,
    final=False,
    card_factor=None,
):
    inputs = inputs or [
        SegmentInput(0, "base", "t", est_rows=1000.0, est_width=40.0, dominant=True)
    ]
    if card_factor is None:
        product = 1.0
        for i in inputs:
            product *= max(i.est_rows, 1e-9)
        card_factor = est_out / product
    return SegmentSpec(
        id=seg_id,
        label=f"seg{seg_id}",
        inputs=inputs,
        est_output_rows=est_out,
        est_output_width=out_width,
        final=final,
        card_factor=card_factor,
    )


def setup(specs):
    tracker = WorkTracker(
        [len(s.inputs) for s in specs], final_segment=specs[-1].id
    )
    return PaperEstimator(specs, tracker), tracker


class TestBaseInputRefinement:
    def test_pending_uses_optimizer_estimate(self):
        estimator, _ = setup([make_spec(final=True)])
        snap = estimator.snapshot()
        assert snap.segments[0].inputs[0].est_rows == 1000.0

    def test_case_a_keeps_ne_until_finish(self):
        # Np <= Ne: keep Ne while scanning (Section 4.3 case a).
        estimator, tracker = setup([make_spec(final=True)])
        tracker.input_rows(0, 0, 500, 500 * 40.0)
        snap = estimator.snapshot()
        assert snap.segments[0].inputs[0].est_rows == 1000.0

    def test_case_a_exact_after_finish(self):
        estimator, tracker = setup([make_spec(final=True)])
        tracker.input_rows(0, 0, 700, 700 * 40.0)
        tracker.segment_finished(0)
        snap = estimator.snapshot()
        assert snap.segments[0].inputs[0].est_rows == 700.0

    def test_case_b_overrun_uses_actual(self):
        # Np > Ne: once reads exceed Ne, use the running count (case b).
        estimator, tracker = setup([make_spec(final=True)])
        tracker.input_rows(0, 0, 1500, 1500 * 40.0)
        snap = estimator.snapshot()
        assert snap.segments[0].inputs[0].est_rows == 1500.0

    def test_observed_width_replaces_estimate(self):
        estimator, tracker = setup([make_spec(final=True)])
        tracker.input_rows(0, 0, 100, 100 * 60.0)
        snap = estimator.snapshot()
        assert snap.segments[0].inputs[0].est_width == pytest.approx(60.0)


class TestOutputRefinement:
    def test_pending_output_is_e1(self):
        estimator, _ = setup([make_spec(final=True)])
        assert estimator.snapshot().segments[0].est_output_rows == pytest.approx(100.0)

    def test_e_formula_blends_e1_and_observed(self):
        # E = y + (1-p) * E1 at p = x/z.
        estimator, tracker = setup([make_spec(final=True)])
        tracker.input_rows(0, 0, 400, 400 * 40.0)  # p = 0.4
        tracker.output_rows(0, 80, 80 * 50.0)  # y = 80 (trending to 200)
        seg = estimator.snapshot().segments[0]
        assert seg.p == pytest.approx(0.4)
        assert seg.est_output_rows == pytest.approx(80 + 0.6 * 100.0)

    def test_e_converges_to_actual_at_completion(self):
        estimator, tracker = setup([make_spec(final=True)])
        tracker.input_rows(0, 0, 1000, 1000 * 40.0)
        tracker.output_rows(0, 777, 777 * 50.0)
        seg = estimator.snapshot().segments[0]
        assert seg.p == pytest.approx(1.0)
        assert seg.est_output_rows == pytest.approx(777.0)

    def test_finished_segment_exact(self):
        estimator, tracker = setup([make_spec(), make_spec(seg_id=1, final=True)])
        tracker.input_rows(0, 0, 100, 4000.0)
        tracker.output_rows(0, 42, 42 * 30.0)
        tracker.segment_finished(0)
        seg = estimator.snapshot().segments[0]
        assert seg.status == "finished"
        assert seg.est_output_rows == 42.0
        assert seg.est_cost_bytes == pytest.approx(4000.0 + 42 * 30.0)

    def test_two_dominant_inputs_use_max_progress(self):
        # Sort-merge rule: p = max(qA, qB) (Section 4.5).
        inputs = [
            SegmentInput(0, "base", "a", est_rows=100.0, est_width=10.0, dominant=True),
            SegmentInput(1, "base", "b", est_rows=100.0, est_width=10.0, dominant=True),
        ]
        estimator, tracker = setup([make_spec(inputs=inputs, final=True)])
        tracker.input_rows(0, 0, 20, 200.0)
        tracker.input_rows(0, 1, 60, 600.0)
        assert estimator.snapshot().segments[0].p == pytest.approx(0.6)


class TestPropagation:
    def _two_segments(self):
        producer = make_spec(seg_id=0, est_out=200.0, out_width=50.0)
        consumer_inputs = [
            SegmentInput(
                0,
                "child",
                "runs",
                est_rows=200.0,
                est_width=50.0,
                dominant=True,
                child_segment=0,
            )
        ]
        consumer = make_spec(
            seg_id=1, inputs=consumer_inputs, est_out=200.0, final=True
        )
        return setup([producer, consumer])

    def test_future_segment_sees_refined_child_estimate(self):
        estimator, tracker = self._two_segments()
        # Producer learns it outputs more than estimated: p=0.5, y=300.
        tracker.input_rows(0, 0, 500, 500 * 40.0)
        tracker.output_rows(0, 300, 300 * 50.0)
        snap = estimator.snapshot()
        producer_e = snap.segments[0].est_output_rows
        assert producer_e == pytest.approx(300 + 0.5 * 200.0)
        # The consumer's input estimate follows the producer's E.
        assert snap.segments[1].inputs[0].est_rows == pytest.approx(producer_e)

    def test_finished_child_gives_exact_input(self):
        estimator, tracker = self._two_segments()
        tracker.input_rows(0, 0, 1000, 1000 * 40.0)
        tracker.output_rows(0, 321, 321 * 50.0)
        tracker.segment_finished(0)
        snap = estimator.snapshot()
        assert snap.segments[1].inputs[0].est_rows == 321.0

    def test_total_cost_grows_when_inputs_overrun(self):
        estimator, tracker = self._two_segments()
        before = estimator.snapshot().est_total_bytes
        tracker.input_rows(0, 0, 5000, 5000 * 40.0)  # 5x the estimate
        after = estimator.snapshot().est_total_bytes
        assert after > before


class TestSnapshotTotals:
    def test_fraction_done_bounds(self):
        estimator, tracker = setup([make_spec(final=True)])
        assert estimator.snapshot().fraction_done == 0.0
        tracker.input_rows(0, 0, 1000, 1000 * 40.0)
        tracker.finish_all()
        assert estimator.snapshot().fraction_done == pytest.approx(1.0)

    def test_running_cost_never_below_done(self):
        estimator, tracker = setup([make_spec(final=True)])
        tracker.input_rows(0, 0, 5000, 5000 * 40.0)
        seg = estimator.snapshot().segments[0]
        assert seg.est_cost_bytes >= seg.done_bytes

    def test_remaining_bytes_nonnegative(self):
        estimator, tracker = setup([make_spec(final=True)])
        tracker.input_rows(0, 0, 9999, 9999 * 40.0)
        assert estimator.snapshot().remaining_bytes >= 0.0

    def test_pages_conversion(self):
        estimator, tracker = setup([make_spec(final=True)])
        tracker.input_rows(0, 0, 1, 8192.0)
        done, total, remaining = estimator.snapshot().pages(8192)
        assert done == pytest.approx(1.0)
        assert total == pytest.approx(remaining + done, rel=1e-6)
