"""Unit tests for name resolution (the binder)."""

import pytest

from repro.errors import BindError
from repro.expr.bound import ColumnExpr, ComparisonExpr, LogicalExpr
from repro.sql.binder import Binder
from repro.sql.parser import parse_select
from repro.storage.types import BOOLEAN, FLOAT, INTEGER


def bind(db, sql):
    return Binder(db.catalog).bind(parse_select(sql))


class TestTableResolution:
    def test_unknown_table_rejected(self, small_db):
        with pytest.raises(Exception):
            bind(small_db, "select * from nope")

    def test_duplicate_binding_names_rejected(self, small_db):
        with pytest.raises(BindError):
            bind(small_db, "select * from t1, t1")

    def test_self_join_with_aliases_ok(self, small_db):
        bound = bind(small_db, "select x.a, y.a from t1 x, t1 y where x.a = y.b")
        assert [t.binding_name for t in bound.tables] == ["x", "y"]


class TestColumnResolution:
    def test_unqualified_unique_column(self, small_db):
        bound = bind(small_db, "select b from t1")
        expr, name = bound.output[0]
        assert isinstance(expr, ColumnExpr)
        assert expr.coordinate == (0, 1)
        assert name == "b"

    def test_qualified_column(self, small_db):
        bound = bind(small_db, "select t2.v from t1, t2")
        expr, _ = bound.output[0]
        assert expr.coordinate == (1, 1)

    def test_ambiguous_column_rejected(self, small_db):
        with pytest.raises(BindError, match="ambiguous"):
            bind(small_db, "select a from t1, t2")

    def test_unknown_column_rejected(self, small_db):
        with pytest.raises(BindError):
            bind(small_db, "select zzz from t1")

    def test_unknown_qualifier_rejected(self, small_db):
        with pytest.raises(BindError):
            bind(small_db, "select q.a from t1")

    def test_column_types_carried(self, small_db):
        bound = bind(small_db, "select t1.a, v from t1, t2 where t1.a = t2.a")
        assert bound.output[0][0].type == INTEGER
        assert bound.output[1][0].type == FLOAT


class TestSelectList:
    def test_star_expands_all_tables(self, small_db):
        bound = bind(small_db, "select * from t1, t2")
        assert len(bound.output) == 5

    def test_qualified_star(self, small_db):
        bound = bind(small_db, "select t2.* from t1, t2")
        assert len(bound.output) == 2

    def test_duplicate_output_names_disambiguated(self, small_db):
        bound = bind(small_db, "select x.a, y.a from t1 x, t1 y")
        names = [n for _, n in bound.output]
        assert names == ["a", "a_2"]

    def test_alias_respected(self, small_db):
        bound = bind(small_db, "select a as alpha from t1")
        assert bound.output[0][1] == "alpha"

    def test_expression_gets_generated_name(self, small_db):
        bound = bind(small_db, "select a + 1 from t1")
        assert bound.output[0][1] == "col1"


class TestWhereBinding:
    def test_conjuncts_flattened(self, small_db):
        bound = bind(
            small_db, "select a from t1 where a = 1 and b = 2 and a < b"
        )
        assert len(bound.conjuncts) == 3
        assert all(isinstance(c, ComparisonExpr) for c in bound.conjuncts)

    def test_or_stays_single_conjunct(self, small_db):
        bound = bind(small_db, "select a from t1 where a = 1 or b = 2")
        assert len(bound.conjuncts) == 1
        assert isinstance(bound.conjuncts[0], LogicalExpr)

    def test_where_must_be_boolean(self, small_db):
        with pytest.raises(BindError):
            bind(small_db, "select a from t1 where a + 1")

    def test_comparison_type_mismatch_rejected(self, small_db):
        with pytest.raises(BindError):
            bind(small_db, "select a from t1 where s > 5")

    def test_function_arity_checked(self, small_db):
        with pytest.raises(BindError):
            bind(small_db, "select absolute(a, b) from t1")

    def test_unknown_function_rejected(self, small_db):
        with pytest.raises(BindError):
            bind(small_db, "select frobnicate(a) from t1")

    def test_not_requires_boolean(self, small_db):
        with pytest.raises(BindError):
            bind(small_db, "select a from t1 where not a")

    def test_arith_requires_numeric(self, small_db):
        with pytest.raises(BindError):
            bind(small_db, "select s + 1 from t1")

    def test_comparison_result_is_boolean(self, small_db):
        bound = bind(small_db, "select a from t1 where a = 1")
        assert bound.conjuncts[0].type == BOOLEAN


class TestOrderLimitBinding:
    def test_order_by_bound(self, small_db):
        bound = bind(small_db, "select a from t1 order by b desc")
        expr, ascending = bound.order_by[0]
        assert expr.coordinate == (0, 1)
        assert ascending is False

    def test_limit_carried(self, small_db):
        bound = bind(small_db, "select a from t1 limit 7")
        assert bound.limit == 7
