"""Unit tests for executor operators: correctness and cost charging."""

import pytest

from repro.config import SystemConfig
from repro.database import Database
from repro.storage.schema import Column, Schema
from repro.storage.types import FLOAT, INTEGER, string


def make_db(config=None):
    db = Database(config=config)
    db.create_table(
        "r",
        Schema([Column("k", INTEGER), Column("g", INTEGER), Column("s", string(20))]),
        [(i, i % 5, f"r{i}") for i in range(60)],
    )
    db.create_table(
        "s",
        Schema([Column("k", INTEGER), Column("v", FLOAT)]),
        [(i % 30, float(i)) for i in range(90)],
    )
    db.analyze()
    return db


def brute_force_join(db, predicate):
    r_rows = list(db.catalog.get_table("r").heap.iter_rows())
    s_rows = list(db.catalog.get_table("s").heap.iter_rows())
    return sorted(
        (r[0], s[1]) for r in r_rows for s in s_rows if predicate(r, s)
    )


class TestScans:
    def test_seq_scan_all_rows(self):
        db = make_db()
        result = db.execute("select k from r")
        assert len(result.rows) == 60

    def test_filter_applied(self):
        db = make_db()
        result = db.execute("select k from r where g = 2")
        assert sorted(r[0] for r in result.rows) == [i for i in range(60) if i % 5 == 2]

    def test_scan_advances_clock(self):
        db = make_db()
        before = db.clock.now
        db.execute("select k from r")
        assert db.clock.now > before

    def test_warm_scan_faster_than_cold(self):
        db = make_db()
        t0 = db.clock.now
        db.execute("select k from r")
        cold = db.clock.now - t0
        t0 = db.clock.now
        db.execute("select k from r")
        warm = db.clock.now - t0
        assert warm < cold

    def test_function_filter(self):
        db = make_db()
        result = db.execute("select k from r where absolute(k) > 0")
        assert len(result.rows) == 59  # k = 0 excluded


class TestHashJoinOp:
    def test_in_memory_results(self):
        db = make_db()
        result = db.execute("select r.k, s.v from r, s where r.k = s.k")
        expected = brute_force_join(db, lambda r, s: r[0] == s[0])
        assert sorted(result.rows) == expected

    def _big_db(self):
        db = Database(config=SystemConfig(work_mem_pages=1))
        db.create_table(
            "r",
            Schema([Column("k", INTEGER), Column("pad", string(40))]),
            [(i % 200, "x" * 30) for i in range(1500)],
        )
        db.create_table(
            "s",
            Schema([Column("k", INTEGER), Column("v", FLOAT)]),
            [(i % 200, float(i)) for i in range(1500)],
        )
        db.analyze()
        return db

    def test_partitioned_results_match(self):
        db = self._big_db()
        result = db.execute("select r.k, s.v from r, s where r.k = s.k")
        expected = brute_force_join(db, lambda r, s: r[0] == s[0])
        assert sorted(result.rows) == expected

    def test_partitioned_mode_actually_planned(self):
        from repro.planner.physical import HashJoinNode

        db = self._big_db()
        plan = db.prepare("select r.k, s.v from r, s where r.k = s.k")

        def find(node):
            if isinstance(node, HashJoinNode):
                return node
            for c in node.children:
                got = find(c)
                if got is not None:
                    return got
            return None

        assert find(plan.root).num_batches > 1

    def test_partitioned_charges_spill_io(self):
        db = self._big_db()
        db.execute("select r.k, s.v from r, s where r.k = s.k")
        assert db.disk.writes > 0

    def test_extra_filter_on_join(self):
        db = make_db()
        result = db.execute(
            "select r.k, s.v from r, s where r.k = s.k and r.g < s.v"
        )
        expected = brute_force_join(db, lambda r, s: r[0] == s[0] and r[1] < s[1])
        assert sorted(result.rows) == expected

    def test_temp_partitions_released(self):
        db = make_db(SystemConfig(work_mem_pages=1))
        db.execute("select r.k from r, s where r.k = s.k")
        # Only the two base tables should remain on the simulated disk.
        assert len(db.disk._files) == 2


class TestNestLoopOp:
    def test_inequality_join(self):
        db = make_db()
        result = db.execute("select r.k, s.v from r, s where r.k <> s.k")
        expected = brute_force_join(db, lambda r, s: r[0] != s[0])
        assert sorted(result.rows) == expected

    def test_range_join(self):
        db = make_db()
        result = db.execute("select r.k, s.v from r, s where r.k < s.k")
        expected = brute_force_join(db, lambda r, s: r[0] < s[0])
        assert sorted(result.rows) == expected


class TestMergeJoinOp:
    def _merge_db(self):
        db = make_db()
        db.config = db.config.with_planner(
            enable_hashjoin=False, enable_nestloop=False
        )
        return db

    def test_results_match_hash_join(self):
        db = self._merge_db()
        result = db.execute("select r.k, s.v from r, s where r.k = s.k")
        expected = brute_force_join(db, lambda r, s: r[0] == s[0])
        assert sorted(result.rows) == expected

    def test_duplicates_on_both_sides(self):
        db = Database()
        db.config = db.config.with_planner(enable_hashjoin=False, enable_nestloop=False)
        db.create_table(
            "a", Schema([Column("k", INTEGER)]), [(1,), (1,), (2,), (3,)]
        )
        db.create_table(
            "b", Schema([Column("k", INTEGER), Column("x", INTEGER)]),
            [(1, 10), (1, 11), (3, 30)],
        )
        db.analyze()
        result = db.execute("select a.k, b.x from a, b where a.k = b.k")
        assert sorted(result.rows) == [(1, 10), (1, 10), (1, 11), (1, 11), (3, 30)]

    def test_null_keys_never_match(self):
        db = Database()
        db.config = db.config.with_planner(enable_hashjoin=False, enable_nestloop=False)
        db.create_table("a", Schema([Column("k", INTEGER)]), [(None,), (1,)])
        db.create_table("b", Schema([Column("k", INTEGER)]), [(None,), (1,)])
        db.analyze()
        result = db.execute("select a.k from a, b where a.k = b.k")
        assert result.rows == [(1,)]


class TestSortOp:
    def test_order_by_ascending(self):
        db = make_db()
        result = db.execute("select v from s order by v")
        values = [r[0] for r in result.rows]
        assert values == sorted(values)

    def test_order_by_descending(self):
        db = make_db()
        result = db.execute("select v from s order by v desc")
        values = [r[0] for r in result.rows]
        assert values == sorted(values, reverse=True)

    def test_multi_key_sort(self):
        db = make_db()
        result = db.execute("select g, k from r order by g desc, k asc")
        rows = result.rows
        assert rows == sorted(rows, key=lambda t: (-t[0], t[1]))

    def test_external_sort_spills_and_matches(self):
        db = Database(config=SystemConfig(work_mem_pages=1))
        db.create_table(
            "big",
            Schema([Column("v", FLOAT), Column("pad", string(40))]),
            [(float((i * 37) % 1000), "x" * 30) for i in range(2000)],
        )
        db.analyze()
        result = db.execute("select v from big order by v")
        values = [r[0] for r in result.rows]
        assert values == sorted(values)
        assert db.disk.writes > 0

    def test_limit_after_sort(self):
        db = make_db()
        result = db.execute("select v from s order by v desc limit 3")
        assert len(result.rows) == 3
        assert result.rows[0][0] == 89.0


class TestNullHandling:
    def test_null_join_keys_dropped_by_hash_join(self):
        db = Database()
        db.create_table("a", Schema([Column("k", INTEGER)]), [(None,), (1,), (2,)])
        db.create_table("b", Schema([Column("k", INTEGER)]), [(None,), (2,)])
        db.analyze()
        result = db.execute("select a.k from a, b where a.k = b.k")
        assert result.rows == [(2,)]

    def test_null_filter_rejects(self):
        db = Database()
        db.create_table("a", Schema([Column("k", INTEGER)]), [(None,), (5,)])
        db.analyze()
        result = db.execute("select k from a where k > 0")
        assert result.rows == [(5,)]


class TestQueryResult:
    def test_names_follow_select_list(self):
        db = make_db()
        result = db.execute("select k as kk, s from r limit 1")
        assert result.names == ["kk", "s"]

    def test_keep_rows_false_discards_but_counts(self):
        db = make_db()
        result = db.execute("select k from r", keep_rows=False)
        assert result.rows == []
        assert result.row_count == 60

    def test_max_rows_caps_retention(self):
        db = make_db()
        result = db.execute("select k from r", max_rows=5)
        assert len(result.rows) == 5

    def test_elapsed_positive(self):
        db = make_db()
        assert db.execute("select k from r").elapsed > 0
