"""Unit tests: the parameterized workload grid (repro.workloads.grid)."""

from __future__ import annotations

import pytest

from repro.workloads import grid
from repro.workloads.grid import (
    SCALES,
    SELECTIVITIES,
    SHAPES,
    SKEWS,
    TIER1_NAMES,
    enumerate_grid,
    resolve_grid,
    tier1_grid,
    variants_by_name,
)


class TestEnumeration:
    def test_grid_is_the_full_cross_product(self):
        variants = enumerate_grid()
        expected = len(SCALES) * len(SKEWS) * len(SHAPES) * len(SELECTIVITIES)
        assert len(variants) == expected
        # The ISSUE's floor: a genuinely broad workload population.
        assert len(variants) >= 200

    def test_names_are_unique_and_structured(self):
        variants = enumerate_grid()
        names = [v.name for v in variants]
        assert len(set(names)) == len(names)
        for v in variants:
            assert v.name == f"{v.scale_key}-{v.skew}-{v.shape}-{v.selectivity_key}"

    def test_enumeration_is_deterministic(self):
        assert enumerate_grid() == enumerate_grid()

    def test_every_axis_value_appears(self):
        variants = enumerate_grid()
        assert {v.scale_key for v in variants} == set(SCALES)
        assert {v.skew for v in variants} == set(SKEWS)
        assert {v.shape for v in variants} == set(SHAPES)
        assert {v.selectivity_key for v in variants} == set(SELECTIVITIES)

    def test_sql_has_predicate_substituted(self):
        for v in enumerate_grid():
            assert "{pred}" not in v.sql
            assert v.sql.strip()

    def test_dataset_key_groups_scale_and_skew(self):
        variants = enumerate_grid()
        keys = {v.dataset_key for v in variants}
        assert keys == {(s, k) for s in SCALES for k in SKEWS}


class TestTier1:
    def test_tier1_is_curated_and_resolvable(self):
        variants = tier1_grid()
        assert len(variants) == len(TIER1_NAMES) == 40
        assert [v.name for v in variants] == list(TIER1_NAMES)

    def test_tier1_covers_every_axis_value(self):
        variants = tier1_grid()
        assert {v.skew for v in variants} == set(SKEWS)
        assert {v.scale_key for v in variants} == set(SCALES)
        assert {v.shape for v in variants} == set(SHAPES)
        assert {v.selectivity_key for v in variants} == set(SELECTIVITIES)

    def test_tier1_names_validate_against_grid(self, monkeypatch):
        monkeypatch.setattr(
            grid, "TIER1_NAMES", TIER1_NAMES + ("xs-uniform-bogus-full",)
        )
        with pytest.raises(ValueError, match="bogus"):
            tier1_grid()

    def test_resolve_grid(self):
        assert resolve_grid("tier1") == tier1_grid()
        assert resolve_grid("full") == enumerate_grid()
        with pytest.raises(ValueError, match="unknown grid"):
            resolve_grid("tier2")


class TestSkewProfiles:
    def test_every_profile_keeps_expected_fanout_10(self):
        # Statistics-identical datasets: E[orders per customer] == 10 when
        # nationkey is uniform on 0..24.
        for name, fn in SKEWS.items():
            fanouts = [fn((1, "x", "y", nationkey)) for nationkey in range(25)]
            assert sum(fanouts) / len(fanouts) == pytest.approx(10.0), name

    def test_hot_profile_concentrates_orders(self):
        fn = SKEWS["hot"]
        hot = fn((1, "x", "y", 0))
        rest = sum(fn((1, "x", "y", n)) for n in range(1, 25))
        assert hot / (hot + rest) > 0.35


class TestDatasets:
    def test_build_dataset_is_deterministic_and_runs(self):
        by_name = variants_by_name()
        variant = by_name["xs-uniform-scan-tenth"]
        db = variant.build_database()
        rows_a = db.connect().execute(variant.sql, keep_rows=False).row_count
        db2 = variant.build_database()
        rows_b = db2.connect().execute(variant.sql, keep_rows=False).row_count
        assert rows_a == rows_b > 0

    def test_selectivity_levels_order_row_counts(self):
        by_name = variants_by_name()
        counts = {}
        db = by_name["xs-uniform-scan-full"].build_database()
        for level in ("full", "half", "tenth"):
            v = by_name[f"xs-uniform-scan-{level}"]
            counts[level] = db.connect().execute(
                v.sql, keep_rows=False
            ).row_count
        assert counts["full"] > counts["half"] > counts["tenth"] > 0
        # The targets are approximate but the full scan is exact.
        assert counts["half"] / counts["full"] == pytest.approx(0.5, abs=0.1)
        assert counts["tenth"] / counts["full"] == pytest.approx(0.1, abs=0.05)

    def test_unknown_predicates_are_always_true(self):
        by_name = variants_by_name()
        db = by_name["xs-uniform-scan-full"].build_database()
        for shape in SHAPES:
            full = by_name[f"xs-uniform-{shape}-full"]
            unknown = by_name[f"xs-uniform-{shape}-unknown"]
            n_full = db.connect().execute(full.sql, keep_rows=False).row_count
            n_unknown = db.connect().execute(
                unknown.sql, keep_rows=False
            ).row_count
            assert n_unknown == n_full, shape
