"""Unit tests for bound expressions, the compiler, and SQL functions."""

import pytest

from repro.errors import BindError, ExecutionError
from repro.expr.bound import (
    ArithmeticExpr,
    ColumnExpr,
    ComparisonExpr,
    FunctionExpr,
    LiteralExpr,
    LogicalExpr,
    NegativeExpr,
    NotExpr,
    as_conjuncts,
    equijoin_sides,
    referenced_tables,
)
from repro.expr.compiler import compile_expr, compile_predicate
from repro.expr.functions import lookup_function
from repro.storage.types import FLOAT, INTEGER, string


def col(t, c, name="c", type_=INTEGER):
    return ColumnExpr(t, c, name, type_)


LAYOUT = {(0, 0): 0, (0, 1): 1, (1, 0): 2}


class TestCompiler:
    def test_column_lookup(self):
        fn = compile_expr(col(0, 1), LAYOUT)
        assert fn((10, 20, 30)) == 20

    def test_missing_coordinate_raises(self):
        with pytest.raises(ExecutionError):
            compile_expr(col(5, 5), LAYOUT)

    def test_literal(self):
        fn = compile_expr(LiteralExpr(42, INTEGER), LAYOUT)
        assert fn(()) == 42

    def test_comparison(self):
        fn = compile_expr(ComparisonExpr("<", col(0, 0), col(0, 1)), LAYOUT)
        assert fn((1, 2, 0)) is True
        assert fn((2, 1, 0)) is False

    def test_comparison_with_null_is_none(self):
        fn = compile_expr(ComparisonExpr("=", col(0, 0), LiteralExpr(1, INTEGER)), LAYOUT)
        assert fn((None, 0, 0)) is None

    def test_predicate_null_is_false(self):
        fn = compile_predicate(
            ComparisonExpr("=", col(0, 0), LiteralExpr(1, INTEGER)), LAYOUT
        )
        assert fn((None, 0, 0)) is False
        assert fn((1, 0, 0)) is True

    def test_and_short_circuit(self):
        expr = LogicalExpr(
            "and",
            [
                ComparisonExpr(">", col(0, 0), LiteralExpr(0, INTEGER)),
                ComparisonExpr(">", col(0, 1), LiteralExpr(0, INTEGER)),
            ],
        )
        fn = compile_expr(expr, LAYOUT)
        assert fn((1, 1, 0)) is True
        assert fn((0, 1, 0)) is False

    def test_and_with_null_sql_semantics(self):
        expr = LogicalExpr(
            "and",
            [
                ComparisonExpr(">", col(0, 0), LiteralExpr(0, INTEGER)),
                ComparisonExpr(">", col(0, 1), LiteralExpr(0, INTEGER)),
            ],
        )
        fn = compile_expr(expr, LAYOUT)
        assert fn((1, None, 0)) is None  # TRUE AND NULL = NULL
        assert fn((0, None, 0)) is False  # FALSE AND NULL = FALSE

    def test_or_with_null_sql_semantics(self):
        expr = LogicalExpr(
            "or",
            [
                ComparisonExpr(">", col(0, 0), LiteralExpr(0, INTEGER)),
                ComparisonExpr(">", col(0, 1), LiteralExpr(0, INTEGER)),
            ],
        )
        fn = compile_expr(expr, LAYOUT)
        assert fn((1, None, 0)) is True  # TRUE OR NULL = TRUE
        assert fn((0, None, 0)) is None  # FALSE OR NULL = NULL

    def test_arithmetic(self):
        expr = ArithmeticExpr("*", col(0, 0), LiteralExpr(3, INTEGER))
        assert compile_expr(expr, LAYOUT)((7, 0, 0)) == 21

    def test_arithmetic_null_propagates(self):
        expr = ArithmeticExpr("+", col(0, 0), LiteralExpr(3, INTEGER))
        assert compile_expr(expr, LAYOUT)((None, 0, 0)) is None

    def test_division_yields_float(self):
        expr = ArithmeticExpr("/", LiteralExpr(7, INTEGER), LiteralExpr(2, INTEGER))
        assert expr.type == FLOAT
        assert compile_expr(expr, LAYOUT)(()) == pytest.approx(3.5)

    def test_not(self):
        inner = ComparisonExpr("=", col(0, 0), LiteralExpr(1, INTEGER))
        fn = compile_expr(NotExpr(inner), LAYOUT)
        assert fn((1, 0, 0)) is False
        assert fn((2, 0, 0)) is True
        assert fn((None, 0, 0)) is None

    def test_negative(self):
        fn = compile_expr(NegativeExpr(col(0, 0)), LAYOUT)
        assert fn((5, 0, 0)) == -5

    def test_function_call(self):
        func = lookup_function("absolute", 1)
        fn = compile_expr(FunctionExpr(func, [col(0, 0)]), LAYOUT)
        assert fn((-9, 0, 0)) == 9

    def test_function_null_safe(self):
        func = lookup_function("absolute", 1)
        fn = compile_expr(FunctionExpr(func, [col(0, 0)]), LAYOUT)
        assert fn((None, 0, 0)) is None

    def test_two_arg_function(self):
        func = lookup_function("mod", 2)
        fn = compile_expr(
            FunctionExpr(func, [col(0, 0), LiteralExpr(3, INTEGER)]), LAYOUT
        )
        assert fn((10, 0, 0)) == 1


class TestStructureHelpers:
    def test_as_conjuncts_flattens_nested_ands(self):
        a = ComparisonExpr("=", col(0, 0), LiteralExpr(1, INTEGER))
        b = ComparisonExpr("=", col(0, 1), LiteralExpr(2, INTEGER))
        c = ComparisonExpr("=", col(1, 0), LiteralExpr(3, INTEGER))
        nested = LogicalExpr("and", [LogicalExpr("and", [a, b]), c])
        assert as_conjuncts(nested) == [a, b, c]

    def test_as_conjuncts_none(self):
        assert as_conjuncts(None) == []

    def test_as_conjuncts_keeps_or_whole(self):
        a = ComparisonExpr("=", col(0, 0), LiteralExpr(1, INTEGER))
        b = ComparisonExpr("=", col(0, 1), LiteralExpr(2, INTEGER))
        disj = LogicalExpr("or", [a, b])
        assert as_conjuncts(disj) == [disj]

    def test_referenced_tables(self):
        expr = ComparisonExpr("=", col(0, 0), col(1, 0))
        assert referenced_tables(expr) == frozenset({0, 1})

    def test_equijoin_sides_detected(self):
        expr = ComparisonExpr("=", col(0, 0), col(1, 0))
        sides = equijoin_sides(expr)
        assert sides is not None
        assert sides[0].table_index == 0
        assert sides[1].table_index == 1

    def test_equijoin_requires_two_tables(self):
        expr = ComparisonExpr("=", col(0, 0), col(0, 1))
        assert equijoin_sides(expr) is None

    def test_equijoin_rejects_inequality(self):
        expr = ComparisonExpr("<>", col(0, 0), col(1, 0))
        assert equijoin_sides(expr) is None

    def test_display_renders(self):
        expr = ComparisonExpr(
            "<=",
            ArithmeticExpr("+", col(0, 0, "a"), LiteralExpr(1, INTEGER)),
            LiteralExpr(10, INTEGER),
        )
        assert expr.display() == "((a + 1) <= 10)"


class TestFunctions:
    def test_lookup_unknown_raises(self):
        with pytest.raises(BindError):
            lookup_function("nope", 1)

    def test_lookup_wrong_arity_raises(self):
        with pytest.raises(BindError):
            lookup_function("absolute", 2)

    def test_absolute_alias_abs(self):
        assert lookup_function("abs", 1).evaluate(-2) == 2

    def test_upper_lower(self):
        assert lookup_function("upper", 1).evaluate("ab") == "AB"
        assert lookup_function("lower", 1).evaluate("AB") == "ab"

    def test_length(self):
        assert lookup_function("length", 1).evaluate("abcd") == 4

    def test_return_type_same_as_arg(self):
        f = lookup_function("absolute", 1)
        assert f.return_type([FLOAT]) == FLOAT
        assert f.return_type([INTEGER]) == INTEGER

    def test_functions_not_estimatable(self):
        # The property the paper's Figures 9/18 depend on.
        assert lookup_function("absolute", 1).estimatable is False
