"""Unit tests for the stable session API (repro.api) and the shims."""

from __future__ import annotations

import pytest

from repro.api import QueryHandle, Session
from repro.database import MonitoredResult
from repro.errors import ProgressError
from repro.obs.bus import SealedTrace, TraceBus
from repro.workloads import queries, tpcr


def _db():
    return tpcr.build_database(scale=0.002, subset_rows=60)


# ----------------------------------------------------------------------
# Session / QueryHandle


class TestSession:
    def test_connect_returns_a_session(self):
        session = _db().connect()
        assert isinstance(session, Session)
        assert session.handles == []

    def test_submit_result_round_trip(self):
        session = _db().connect()
        handle = session.submit("select count(*) from lineitem")
        assert isinstance(handle, QueryHandle)
        assert handle.state == "pending"
        result = handle.result()
        assert handle.done and handle.state == "finished"
        assert result.row_count == 1
        # result() is idempotent once finished.
        assert handle.result() is result

    def test_progress_is_valid_any_time(self):
        session = _db().connect()
        handle = session.submit(queries.Q1, keep_rows=False)
        before = handle.progress()
        assert before is not None and before.fraction_done == 0.0
        session.step()
        mid = handle.progress()
        assert 0.0 <= mid.fraction_done <= 1.0
        handle.result()
        assert handle.progress().fraction_done == pytest.approx(1.0)

    def test_waiting_on_one_handle_pumps_the_others(self):
        session = _db().connect()
        h1 = session.submit(queries.Q1, keep_rows=False)
        h2 = session.submit(queries.Q1, keep_rows=False)
        h1.result()
        assert h2.state in ("suspended", "finished")
        assert len(h2.task.slices) > 0

    def test_submit_accepts_prepared_plans(self):
        db = _db()
        planned = db.prepare("select count(*) from orders")
        handle = db.connect().submit(planned, name="prep")
        assert handle.result().rows[0][0] > 0

    def test_execute_convenience_is_unmonitored(self):
        session = _db().connect()
        result = session.execute("select count(*) from orders")
        assert result.row_count == 1
        assert session.handles[0].progress() is None

    def test_monitored_bridge_returns_legacy_bundle(self):
        session = _db().connect()
        handle = session.submit(queries.Q1, keep_rows=False, trace=True)
        bundle = handle.monitored()
        assert isinstance(bundle, MonitoredResult)
        assert bundle.result is handle.result()
        assert bundle.log is handle.log
        assert isinstance(bundle.trace, SealedTrace)

    def test_monitored_requires_monitoring(self):
        session = _db().connect()
        handle = session.submit(queries.Q1, monitor=False, keep_rows=False)
        with pytest.raises(ProgressError, match="monitor=False"):
            handle.monitored()

    def test_failed_query_raises_original_error(self):
        db = _db()
        session = db.connect()
        handle = session.submit("select count(*) from lineitem")
        handle.task.gen = iter_raises()
        with pytest.raises(RuntimeError, match="boom"):
            handle.result()
        assert handle.state == "failed"

    def test_cancel_then_result_raises(self):
        session = _db().connect()
        handle = session.submit(queries.Q1, keep_rows=False)
        session.step()
        log = handle.cancel()
        assert handle.state == "cancelled"
        assert log is not None and log.final().finished is False
        with pytest.raises(ProgressError, match="cancelled"):
            handle.result()
        # cancel() is idempotent.
        assert handle.cancel() is log


def iter_raises():
    def gen():
        raise RuntimeError("boom")
        yield  # pragma: no cover

    return gen()


# ----------------------------------------------------------------------
# sealed traces


class TestSealedTrace:
    def test_trace_view_is_read_only(self):
        session = _db().connect()
        handle = session.submit(queries.Q1, keep_rows=False, trace=True)
        handle.result()
        sealed = handle.trace()
        assert isinstance(sealed, SealedTrace)
        assert len(sealed) > 0
        assert not hasattr(sealed, "emit")
        assert not hasattr(sealed, "subscribe")
        assert isinstance(sealed.events, tuple)
        with pytest.raises(AttributeError):
            sealed.events = ()

    def test_sealed_view_is_stable_once_done(self):
        session = _db().connect()
        handle = session.submit(queries.Q1, keep_rows=False, trace=True)
        handle.result()
        assert handle.trace() is handle.trace()

    def test_of_kind_and_counts_match(self):
        session = _db().connect()
        handle = session.submit(queries.Q1, keep_rows=False, trace=True)
        handle.result()
        sealed = handle.trace()
        for kind, count in sealed.counts().items():
            assert len(list(sealed.of_kind(kind))) == count

    def test_untraced_query_has_no_trace(self):
        session = _db().connect()
        handle = session.submit(queries.Q1, keep_rows=False, trace=False)
        handle.result()
        assert handle.trace() is None

    def test_caller_supplied_bus_still_live_but_view_sealed(self):
        bus = TraceBus()
        session = _db().connect()
        handle = session.submit(queries.Q1, keep_rows=False, trace=bus)
        bundle = handle.monitored()
        assert isinstance(bundle.trace, SealedTrace)
        assert len(bundle.trace) == len(bus.events)


# ----------------------------------------------------------------------
# deprecated facade shims


class TestDeprecatedFacade:
    def test_execute_warns_and_still_works(self):
        db = _db()
        with pytest.warns(DeprecationWarning, match="Database.execute"):
            result = db.execute("select count(*) from lineitem")
        assert result.row_count == 1

    def test_execute_with_progress_warns_and_matches_session(self):
        db = _db()
        with pytest.warns(DeprecationWarning, match="execute_with_progress"):
            monitored = db.execute_with_progress(queries.Q1)
        assert isinstance(monitored, MonitoredResult)
        assert monitored.log.final().fraction_done == pytest.approx(1.0)
        assert monitored.result.row_count > 0

    def test_run_planned_with_progress_warns(self):
        db = _db()
        planned = db.prepare(queries.Q1)
        with pytest.warns(DeprecationWarning, match="run_planned_with_progress"):
            monitored = db.run_planned_with_progress(planned, label="Q1")
        assert monitored.log.final().fraction_done == pytest.approx(1.0)

    def test_shim_trace_is_sealed_not_live(self):
        db = _db()
        with pytest.warns(DeprecationWarning):
            monitored = db.execute_with_progress(queries.Q1, trace=TraceBus())
        assert isinstance(monitored.trace, SealedTrace)
        assert not hasattr(monitored.trace, "emit")

    def test_session_path_emits_no_deprecation_warning(self, recwarn):
        session = _db().connect()
        session.submit(queries.Q1, keep_rows=False).result()
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
