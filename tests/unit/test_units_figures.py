"""Unit tests for units helpers and figure rendering."""

import pytest

from repro.bench.figures import render_series, render_table, sparkline
from repro.bench.metrics import (
    convergence_time,
    is_nondecreasing,
    max_jump,
    mean_abs_error,
    series_max,
    series_min,
    value_near,
)
from repro.core.units import (
    bytes_to_units,
    format_duration,
    remaining_time,
    units_to_bytes,
)


class TestUnits:
    def test_bytes_units_roundtrip(self):
        assert bytes_to_units(units_to_bytes(7.0, 8192), 8192) == pytest.approx(7.0)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_units(100, 0)

    def test_remaining_time(self):
        assert remaining_time(100.0, 10.0) == pytest.approx(10.0)
        assert remaining_time(100.0, None) is None
        assert remaining_time(100.0, 0.0) is None

    def test_format_duration_paper_style(self):
        # The paper's Figure 2 shows "5 hour 3 min 7 sec".
        assert format_duration(5 * 3600 + 3 * 60 + 7) == "5 hour 3 min 7 sec"
        assert format_duration(65) == "1 min 5 sec"
        assert format_duration(9) == "9 sec"

    def test_format_duration_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestMetrics:
    SERIES = [(0.0, 10.0), (10.0, 8.0), (20.0, None), (30.0, 4.0)]
    REFERENCE = [(0.0, 9.0), (10.0, 9.0), (20.0, 9.0), (30.0, 5.0)]

    def test_mean_abs_error_skips_undefined(self):
        error = mean_abs_error(self.SERIES, self.REFERENCE)
        assert error == pytest.approx((1.0 + 1.0 + 1.0) / 3)

    def test_mean_abs_error_empty(self):
        assert mean_abs_error([(0.0, None)], self.REFERENCE) is None

    def test_convergence_time_requires_staying(self):
        series = [(0.0, 100.0), (10.0, 50.0), (20.0, 51.0), (30.0, 49.0)]
        assert convergence_time(series, 50.0, 0.05) == 10.0

    def test_convergence_resets_on_departure(self):
        series = [(0.0, 50.0), (10.0, 100.0), (20.0, 50.0)]
        assert convergence_time(series, 50.0, 0.05) == 20.0

    def test_convergence_never(self):
        assert convergence_time([(0.0, 100.0)], 50.0, 0.05) is None

    def test_series_min_max(self):
        assert series_min(self.SERIES) == 4.0
        assert series_max(self.SERIES) == 10.0

    def test_series_min_empty_raises(self):
        with pytest.raises(ValueError):
            series_min([(0.0, None)])

    def test_value_near(self):
        assert value_near(self.SERIES, 15.0) == 8.0
        assert value_near(self.SERIES, -1.0) is None
        assert value_near(self.SERIES, 35.0) == 4.0

    def test_is_nondecreasing(self):
        assert is_nondecreasing([(0.0, 1.0), (1.0, 2.0), (2.0, 2.0)])
        assert not is_nondecreasing([(0.0, 2.0), (1.0, 1.0)])

    def test_max_jump(self):
        assert max_jump([(0.0, 1.0), (1.0, 5.0), (2.0, 3.0)]) == pytest.approx(4.0)
        assert max_jump([(0.0, 1.0)]) == 0.0


class TestFigureRendering:
    def test_render_table_aligns_series(self):
        text = render_table(
            {"est": [(0.0, 1.0), (10.0, 2.0)], "actual": [(0.0, 1.5), (10.0, None)]},
            title="Figure X",
        )
        assert "Figure X" in text
        assert "est" in text and "actual" in text
        assert text.count("\n") >= 4

    def test_render_series_bar_chart(self):
        text = render_series([(0.0, 1.0), (10.0, 5.0)], title="costs")
        assert "costs" in text
        assert "#" in text

    def test_render_series_empty(self):
        assert "no defined points" in render_series([(0.0, None)])

    def test_sparkline(self):
        line = sparkline([(0.0, 0.0), (1.0, 5.0), (2.0, 10.0)])
        assert len(line) == 3

    def test_sparkline_empty(self):
        assert sparkline([]) == ""
