"""Unit tests: determinism-effect checker (REPRO110/111)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.flow.baseline import Baseline, find_repo_root
from repro.analysis.flow.callgraph import build_callgraph
from repro.analysis.flow.effects import analyze_effects

from tests.unit.test_flow_atomicity import build_repro_pkg, rules_of

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src"


def effects(tmp_path, modules):
    return analyze_effects(build_repro_pkg(tmp_path, modules))


class TestOwnSources:
    def test_wall_clock_in_core_is_flagged(self, tmp_path):
        findings = effects(tmp_path, {"core.m": (
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        )})
        assert rules_of(findings) == {"REPRO110"}
        assert "wall-clock" in findings[0].message

    def test_module_level_random_is_flagged(self, tmp_path):
        findings = effects(tmp_path, {"executor.m": (
            "import random\n"
            "def f():\n"
            "    return random.random()\n"
        )})
        assert rules_of(findings) == {"REPRO110"}
        assert "unseeded-random" in findings[0].message

    def test_unseeded_random_instance_is_flagged(self, tmp_path):
        findings = effects(tmp_path, {"core.m": (
            "import random\n"
            "def f():\n"
            "    return random.Random()\n"
        )})
        assert rules_of(findings) == {"REPRO110"}

    def test_seeded_random_instance_is_fine(self, tmp_path):
        findings = effects(tmp_path, {"core.m": (
            "import random\n"
            "def f(seed):\n"
            "    return random.Random(seed)\n"
        )})
        assert findings == []

    def test_environment_read_is_flagged(self, tmp_path):
        findings = effects(tmp_path, {"core.m": (
            "import os\n"
            "def f():\n"
            "    return os.environ.get('X')\n"
        )})
        assert rules_of(findings) == {"REPRO110"}
        assert "environment" in findings[0].message

    def test_builtin_hash_is_flagged(self, tmp_path):
        findings = effects(tmp_path, {"executor.m": (
            "def f(key):\n"
            "    return hash(key)\n"
        )})
        assert rules_of(findings) == {"REPRO110"}
        assert "salted-hash" in findings[0].message

    def test_threading_is_flagged(self, tmp_path):
        findings = effects(tmp_path, {"core.m": (
            "import threading\n"
            "def f():\n"
            "    return threading.get_ident()\n"
        )})
        assert rules_of(findings) == {"REPRO110"}
        assert "threading" in findings[0].message

    def test_outside_enforced_scope_is_ignored(self, tmp_path):
        findings = effects(tmp_path, {"bench.m": (
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        )})
        assert findings == []


class TestTransitiveReach:
    def test_reaching_nondeterminism_through_a_helper(self, tmp_path):
        findings = effects(tmp_path, {
            "util.helper": (
                "import time\n"
                "def now():\n"
                "    return time.time()\n"
            ),
            "core.m": (
                "from repro.util.helper import now\n"
                "def f():\n"
                "    return now()\n"
            ),
        })
        assert rules_of(findings) == {"REPRO110"}
        [f] = findings
        assert f.function == "repro.core.m.f"
        assert "transitively reaches" in f.message
        assert "repro.util.helper.now" in f.message
        assert f.witness == ("repro.core.m.f", "repro.util.helper.now")

    def test_reported_once_at_the_boundary(self, tmp_path):
        # When the impure callee is itself enforced, only the callee is
        # reported — the caller's path is covered by that finding.
        findings = effects(tmp_path, {"core.m": (
            "import time\n"
            "def inner():\n"
            "    return time.time()\n"
            "def outer():\n"
            "    return inner()\n"
        )})
        assert [f.function for f in findings] == ["repro.core.m.inner"]

    def test_pure_call_chain_is_clean(self, tmp_path):
        findings = effects(tmp_path, {"core.m": (
            "def inner(x):\n"
            "    return x + 1\n"
            "def outer(x):\n"
            "    return inner(x)\n"
        )})
        assert findings == []


class TestSetIterationOrder:
    def test_for_over_set_literal(self, tmp_path):
        findings = effects(tmp_path, {"core.m": (
            "def f():\n"
            "    out = []\n"
            "    for x in {1, 2, 3}:\n"
            "        out.append(x)\n"
            "    return out\n"
        )})
        assert rules_of(findings) == {"REPRO111"}

    def test_comprehension_over_set_local(self, tmp_path):
        findings = effects(tmp_path, {"executor.m": (
            "def f(rows):\n"
            "    keys = set(rows)\n"
            "    return [k for k in keys]\n"
        )})
        assert rules_of(findings) == {"REPRO111"}

    def test_sorted_set_is_fine(self, tmp_path):
        findings = effects(tmp_path, {"core.m": (
            "def f(rows):\n"
            "    keys = set(rows)\n"
            "    return [k for k in sorted(keys)]\n"
        )})
        assert findings == []

    def test_set_membership_without_iteration_is_fine(self, tmp_path):
        findings = effects(tmp_path, {"core.m": (
            "def f(rows, keys):\n"
            "    seen = set(keys)\n"
            "    return [r for r in rows if r in seen]\n"
        )})
        assert findings == []

    def test_outside_enforced_scope_is_ignored(self, tmp_path):
        findings = effects(tmp_path, {"bench.m": (
            "def f():\n"
            "    return [x for x in {1, 2}]\n"
        )})
        assert findings == []


class TestShippedTree:
    def test_every_finding_is_baseline_suppressed(self):
        """The merge gate: ``effects --strict`` lands green because every
        remaining REPRO110 carries a justified suppression."""
        graph = build_callgraph(REPO_SRC / "repro")
        findings = analyze_effects(graph, repo_root=REPO_ROOT)
        assert findings, "the concurrent workload's threading should show"
        assert rules_of(findings) == {"REPRO110"}
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        unsuppressed, suppressed, stale = baseline.filter(findings)
        assert unsuppressed == []
        assert len(suppressed) == len(findings)
        assert stale == []

    def test_find_repo_root_locates_pyproject(self):
        assert find_repo_root(Path(__file__)) == REPO_ROOT
