"""Unit tests: every plan/segment invariant rejects a broken plan.

Each test takes a real optimizer plan, breaks exactly one structural
property the paper's estimator relies on, and asserts the verifier flags
it under the right rule id.  A clean plan must produce zero violations.
"""

from __future__ import annotations

import pytest

from repro.analysis.invariants import (
    INVARIANT_RULES,
    collect_nodes,
    verify_plan,
    verify_segments,
)
from repro.config import SystemConfig
from repro.core.segments import build_segments
from repro.database import Database
from repro.planner.physical import HashJoinNode, SeqScanNode, SortNode
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string


def make_db(work_mem_pages: int = 256) -> Database:
    db = Database(config=SystemConfig(work_mem_pages=work_mem_pages))
    db.create_table(
        "r",
        Schema([Column("a", INTEGER), Column("b", INTEGER), Column("s", string(30))]),
        [(i, i % 7, "x" * (i % 20)) for i in range(400)],
    )
    db.create_table(
        "t",
        Schema([Column("a", INTEGER), Column("c", INTEGER)]),
        [(i % 200, i) for i in range(600)],
    )
    db.analyze()
    return db


def segmented(db: Database, sql: str):
    planned = db.prepare(sql)
    specs = build_segments(planned.root)
    return planned.root, specs


def rule_ids(violations) -> set[str]:
    return {v.rule for v in violations}


#: A plan with a blocking aggregate, a sort and an in-memory hash join.
RICH_SQL = (
    "select r.b, count(*) from r, t where r.a = t.a group by r.b order by r.b"
)


class TestCleanPlans:
    @pytest.mark.parametrize(
        "sql",
        [
            "select * from r",
            "select r.a from r where r.b = 3 order by r.a limit 5",
            RICH_SQL,
            "select r.a, t.c from r, t where r.a = t.a",
        ],
    )
    def test_optimizer_plans_verify_clean(self, sql):
        root, specs = segmented(make_db(), sql)
        assert verify_segments(root, specs) == []

    def test_multi_batch_plan_verifies_clean(self):
        root, specs = segmented(
            make_db(work_mem_pages=1), "select r.a, t.c from r, t where r.a = t.a"
        )
        join = next(n for n in collect_nodes(root) if isinstance(n, HashJoinNode))
        assert join.num_batches > 1  # precondition: Figure 3 shape present
        assert verify_segments(root, specs) == []

    def test_verify_plan_builds_and_checks(self):
        db = make_db()
        planned = db.prepare(RICH_SQL)
        specs, violations = verify_plan(planned.root)
        assert violations == []
        assert [s.id for s in specs] == list(range(len(specs)))


class TestEachInvariantRejects:
    """One deliberately-broken plan per registered rule."""

    def test_dense_ids(self):
        root, specs = segmented(make_db(), RICH_SQL)
        specs[0].id = 99
        assert "dense-ids" in rule_ids(verify_segments(root, specs))

    def test_single_final_none(self):
        root, specs = segmented(make_db(), RICH_SQL)
        specs[-1].final = False
        assert "single-final" in rule_ids(verify_segments(root, specs))

    def test_single_final_multiple(self):
        root, specs = segmented(make_db(), RICH_SQL)
        specs[0].final = True
        assert "single-final" in rule_ids(verify_segments(root, specs))

    def test_topological_order(self):
        root, specs = segmented(make_db(), RICH_SQL)
        child_inp = next(
            i for s in specs for i in s.inputs if i.kind == "child"
        )
        child_inp.child_segment = len(specs) - 1  # forward reference
        holder = next(s for s in specs if child_inp in s.inputs)
        if holder.id == len(specs) - 1:
            child_inp.child_segment = holder.id  # self reference
        assert "topological-order" in rule_ids(verify_segments(root, specs))

    def test_dominant_count(self):
        root, specs = segmented(make_db(), RICH_SQL)
        for inp in specs[0].inputs:
            inp.dominant = False
        assert "dominant-count" in rule_ids(verify_segments(root, specs))

    def test_hash_probe_dominance(self):
        root, specs = segmented(
            make_db(), "select r.a, t.c from r, t where r.a = t.a"
        )
        join = next(n for n in collect_nodes(root) if isinstance(n, HashJoinNode))
        assert join.num_batches == 1
        seg, idx = join.pi_hash_input_ref
        specs[seg].inputs[idx].dominant = True
        assert "hash-probe-dominance" in rule_ids(verify_segments(root, specs))

    def test_blocking_closes_segment_missing(self):
        root, specs = segmented(make_db(), RICH_SQL)
        sort = next(n for n in collect_nodes(root) if isinstance(n, SortNode))
        sort.pi_sort_segment = None
        assert "blocking-closes-segment" in rule_ids(verify_segments(root, specs))

    def test_blocking_closes_segment_shared(self):
        root, specs = segmented(make_db(), RICH_SQL)
        sort = next(n for n in collect_nodes(root) if isinstance(n, SortNode))
        sort.pi_sort_segment = sort.segment_id
        assert "blocking-closes-segment" in rule_ids(verify_segments(root, specs))

    def test_figure3_shape(self):
        root, specs = segmented(
            make_db(work_mem_pages=1), "select r.a, t.c from r, t where r.a = t.a"
        )
        join = next(n for n in collect_nodes(root) if isinstance(n, HashJoinNode))
        assert join.num_batches > 1
        # Swap PA/PB dominance: PA dominant, PB not — breaks rule 2b's
        # "probe partitions drive progress".
        pa_seg, pa_idx = join.pi_pa_input_ref
        pb_seg, pb_idx = join.pi_pb_input_ref
        specs[pa_seg].inputs[pa_idx].dominant = True
        specs[pb_seg].inputs[pb_idx].dominant = False
        assert "figure3-shape" in rule_ids(verify_segments(root, specs))

    def test_byte_conservation_never_consumed(self):
        root, specs = segmented(make_db(), RICH_SQL)
        consumer = next(
            s for s in specs if any(i.kind == "child" for i in s.inputs)
        )
        consumer.inputs = [i for i in consumer.inputs if i.kind != "child"]
        assert "byte-conservation" in rule_ids(verify_segments(root, specs))

    def test_byte_conservation_double_counted(self):
        root, specs = segmented(make_db(), RICH_SQL)
        import copy

        consumer = next(
            s for s in specs if any(i.kind == "child" for i in s.inputs)
        )
        child_inp = next(i for i in consumer.inputs if i.kind == "child")
        dup = copy.copy(child_inp)
        dup.index = len(consumer.inputs)
        dup.dominant = False
        consumer.inputs.append(dup)
        assert "byte-conservation" in rule_ids(verify_segments(root, specs))

    def test_estimates_nonnegative(self):
        root, specs = segmented(make_db(), RICH_SQL)
        specs[0].est_output_rows = -5.0
        assert "estimates-nonnegative" in rule_ids(verify_segments(root, specs))

    def test_estimates_nonnegative_nan(self):
        root, specs = segmented(make_db(), RICH_SQL)
        specs[0].inputs[0].est_rows = float("nan")
        assert "estimates-nonnegative" in rule_ids(verify_segments(root, specs))

    def test_card_factor(self):
        root, specs = segmented(make_db(), RICH_SQL)
        specs[0].card_factor *= 10.0
        assert "card-factor" in rule_ids(verify_segments(root, specs))

    def test_annotations_present_missing_ref(self):
        root, specs = segmented(make_db(), RICH_SQL)
        scan = next(n for n in collect_nodes(root) if isinstance(n, SeqScanNode))
        scan.pi_input_ref = None
        assert "annotations-present" in rule_ids(verify_segments(root, specs))

    def test_annotations_present_wrong_kind(self):
        root, specs = segmented(make_db(), RICH_SQL)
        # Point a scan's base-input ref at a child input slot.
        target = next(
            (s.id, i.index)
            for s in specs
            for i in s.inputs
            if i.kind == "child"
        )
        scan = next(n for n in collect_nodes(root) if isinstance(n, SeqScanNode))
        scan.pi_input_ref = target
        assert "annotations-present" in rule_ids(verify_segments(root, specs))

    def test_annotations_present_missing_segment_id(self):
        root, specs = segmented(make_db(), RICH_SQL)
        collect_nodes(root)[0].segment_id = None
        assert "annotations-present" in rule_ids(verify_segments(root, specs))

    def test_cost_consistency(self):
        root, specs = segmented(make_db(), RICH_SQL)
        specs[0].est_extra_bytes = float("inf")
        assert "cost-consistency" in rule_ids(verify_segments(root, specs))


def test_every_registered_rule_has_a_rejection_test():
    """Meta-check: the class above covers each registered invariant."""
    covered = set()
    for name in dir(TestEachInvariantRejects):
        if name.startswith("test_"):
            covered.add(name[len("test_"):])
    for rule_id in INVARIANT_RULES:
        slug = rule_id.replace("-", "_")
        assert any(c.startswith(slug) for c in covered), (
            f"no rejection test for invariant {rule_id!r}"
        )
