"""Unit tests for column types and schemas."""

import pytest

from repro.errors import StorageError
from repro.storage.schema import Column, Schema, TUPLE_HEADER_BYTES
from repro.storage.types import (
    BOOLEAN,
    DATE,
    FLOAT,
    INTEGER,
    StringType,
    string,
)


class TestTypes:
    def test_integer_width_fixed(self):
        assert INTEGER.width(0) == 4
        assert INTEGER.width(10**6) == 4

    def test_float_width_fixed(self):
        assert FLOAT.width(1.5) == 8

    def test_date_width_fixed(self):
        assert DATE.width(12345) == 4

    def test_string_width_varies(self):
        t = string(20)
        assert t.width("") == 1
        assert t.width("abc") == 4
        assert t.width(None) == 1

    def test_integer_validate(self):
        assert INTEGER.validate(5)
        assert INTEGER.validate(None)
        assert not INTEGER.validate("x")

    def test_float_validate_accepts_int(self):
        assert FLOAT.validate(3)
        assert FLOAT.validate(3.5)
        assert not FLOAT.validate("3.5")

    def test_string_validate_length(self):
        t = string(3)
        assert t.validate("abc")
        assert not t.validate("abcd")

    def test_boolean_validate(self):
        assert BOOLEAN.validate(True)
        assert not BOOLEAN.validate(1)

    def test_string_equality_by_length(self):
        assert string(5) == string(5)
        assert string(5) != string(6)
        assert string(5) != INTEGER

    def test_fixed_type_singletons_equal(self):
        from repro.storage.types import IntegerType

        assert INTEGER == IntegerType()

    def test_string_zero_length_rejected(self):
        with pytest.raises(ValueError):
            StringType(0)


class TestSchema:
    def _schema(self):
        return Schema(
            [Column("a", INTEGER), Column("s", string(10)), Column("v", FLOAT)]
        )

    def test_len_and_names(self):
        s = self._schema()
        assert len(s) == 3
        assert s.names() == ["a", "s", "v"]

    def test_index_of(self):
        s = self._schema()
        assert s.index_of("v") == 2

    def test_index_of_missing_raises(self):
        with pytest.raises(StorageError):
            self._schema().index_of("nope")

    def test_has_column(self):
        s = self._schema()
        assert s.has_column("a")
        assert not s.has_column("z")

    def test_duplicate_names_rejected(self):
        with pytest.raises(StorageError):
            Schema([Column("a", INTEGER), Column("a", FLOAT)])

    def test_row_width_counts_header_and_fields(self):
        s = self._schema()
        row = (1, "abc", 2.0)
        assert s.row_width(row) == TUPLE_HEADER_BYTES + 4 + 4 + 8

    def test_row_width_null_string(self):
        s = self._schema()
        assert s.row_width((1, None, 2.0)) == TUPLE_HEADER_BYTES + 4 + 1 + 8

    def test_min_width(self):
        s = self._schema()
        assert s.min_width() == TUPLE_HEADER_BYTES + 4 + 1 + 8

    def test_concat(self):
        s1 = Schema([Column("a", INTEGER)])
        s2 = Schema([Column("b", FLOAT)])
        joined = s1.concat(s2)
        assert joined.names() == ["a", "b"]

    def test_project(self):
        s = self._schema()
        p = s.project([2, 0])
        assert p.names() == ["v", "a"]

    def test_validate_row_ok(self):
        self._schema().validate_row((1, "hi", 3.0))

    def test_validate_row_arity(self):
        with pytest.raises(StorageError):
            self._schema().validate_row((1, "hi"))

    def test_validate_row_type(self):
        with pytest.raises(StorageError):
            self._schema().validate_row(("x", "hi", 3.0))

    def test_equality(self):
        assert self._schema() == self._schema()
        assert self._schema() != Schema([Column("a", INTEGER)])
