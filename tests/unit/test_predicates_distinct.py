"""Unit tests for BETWEEN / IN / LIKE predicates and SELECT DISTINCT."""

import pytest

from repro.database import Database
from repro.errors import BindError, ParseError
from repro.planner.selectivity import filter_selectivity
from repro.sql.binder import Binder
from repro.sql.parser import parse_select
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "people",
        Schema(
            [
                Column("id", INTEGER),
                Column("name", string(20)),
                Column("age", INTEGER),
            ]
        ),
        [
            (1, "alice", 30),
            (2, "bob", 25),
            (3, "alicia", 35),
            (4, "carol", 40),
            (5, "al", 20),
            (6, None, 45),
        ],
    )
    database.analyze()
    return database


class TestBetween:
    def test_inclusive_both_ends(self, db):
        rows = db.execute("select id from people where age between 25 and 35").rows
        assert sorted(r[0] for r in rows) == [1, 2, 3]

    def test_not_between(self, db):
        rows = db.execute(
            "select id from people where age not between 25 and 35"
        ).rows
        assert sorted(r[0] for r in rows) == [4, 5, 6]

    def test_between_with_expressions(self, db):
        rows = db.execute(
            "select id from people where age between 20 + 5 and 30 + 5"
        ).rows
        assert sorted(r[0] for r in rows) == [1, 2, 3]


class TestIn:
    def test_in_list(self, db):
        rows = db.execute("select id from people where id in (2, 4, 99)").rows
        assert sorted(r[0] for r in rows) == [2, 4]

    def test_not_in_list(self, db):
        rows = db.execute("select id from people where id not in (2, 4)").rows
        assert sorted(r[0] for r in rows) == [1, 3, 5, 6]

    def test_in_strings(self, db):
        rows = db.execute(
            "select id from people where name in ('bob', 'carol')"
        ).rows
        assert sorted(r[0] for r in rows) == [2, 4]

    def test_in_single_value(self, db):
        rows = db.execute("select id from people where id in (3)").rows
        assert rows == [(3,)]


class TestLike:
    def test_prefix_wildcard(self, db):
        rows = db.execute("select name from people where name like 'ali%'").rows
        assert sorted(r[0] for r in rows) == ["alice", "alicia"]

    def test_underscore_single_char(self, db):
        rows = db.execute("select name from people where name like 'a_'").rows
        assert rows == [("al",)]

    def test_contains(self, db):
        rows = db.execute("select name from people where name like '%ro%'").rows
        assert rows == [("carol",)]

    def test_not_like(self, db):
        rows = db.execute("select name from people where name not like 'a%'").rows
        assert sorted(r[0] for r in rows) == ["bob", "carol"]

    def test_null_never_matches(self, db):
        rows = db.execute("select id from people where name like '%'").rows
        assert sorted(r[0] for r in rows) == [1, 2, 3, 4, 5]  # id 6 has NULL

    def test_exact_pattern_without_wildcards(self, db):
        rows = db.execute("select id from people where name like 'bob'").rows
        assert rows == [(2,)]

    def test_regex_metacharacters_are_literal(self):
        database = Database()
        database.create_table(
            "t", Schema([Column("s", string(10))]), [("a.b",), ("axb",)]
        )
        database.analyze()
        rows = database.execute("select s from t where s like 'a.b'").rows
        assert rows == [("a.b",)]

    def test_like_requires_string(self, db):
        with pytest.raises(BindError):
            db.prepare("select id from people where age like '3%'")

    def test_like_selectivity_uses_prefix(self, db):
        bound = Binder(db.catalog).bind(
            parse_select("select id from people where name like 'ali%'")
        )

        def lookup(coord):
            table = bound.tables[coord[0]].table
            name = table.schema.columns[coord[1]].name
            return table.statistics.column(name)

        sel = filter_selectivity(bound.conjuncts[0], lookup, 1.0 / 3.0)
        # Prefix-based estimate: the histogram range ['ali', 'alj').
        stats = lookup((0, 1))
        expected = stats.selectivity_cmp(">=", "ali") - stats.selectivity_cmp(
            ">=", "alj"
        )
        assert sel == pytest.approx(expected)
        assert 0.0 < sel < 1.0

    def test_leading_wildcard_gets_default(self, db):
        bound = Binder(db.catalog).bind(
            parse_select("select id from people where name like '%ol'")
        )
        sel = filter_selectivity(bound.conjuncts[0], lambda c: None, 1.0 / 3.0)
        assert sel == pytest.approx(1.0 / 3.0)


class TestDistinct:
    def test_distinct_deduplicates(self, db):
        database = Database()
        database.create_table(
            "t", Schema([Column("x", INTEGER)]), [(1,), (2,), (1,), (2,), (3,)]
        )
        database.analyze()
        rows = database.execute("select distinct x from t").rows
        assert sorted(rows) == [(1,), (2,), (3,)]

    def test_distinct_preserves_sort_order(self, db):
        database = Database()
        database.create_table(
            "t", Schema([Column("x", INTEGER)]), [(3,), (1,), (2,), (1,)]
        )
        database.analyze()
        rows = database.execute("select distinct x from t order by x desc").rows
        assert rows == [(3,), (2,), (1,)]

    def test_distinct_multi_column(self, db):
        rows = db.execute("select distinct age, id from people").rows
        assert len(rows) == 6  # all distinct anyway

    def test_distinct_with_limit(self):
        database = Database()
        database.create_table(
            "t", Schema([Column("x", INTEGER)]), [(i % 3,) for i in range(30)]
        )
        database.analyze()
        rows = database.execute("select distinct x from t limit 2").rows
        assert len(rows) == 2

    def test_distinct_monitored(self, db):
        monitored = db.execute_with_progress(
            "select distinct age from people", keep_rows=True
        )
        assert len(monitored.result.rows) == 6
        assert monitored.log.final().percent_done == pytest.approx(100.0)


class TestParserErrors:
    def test_dangling_not_rejected(self, db):
        with pytest.raises(ParseError):
            parse_select("select x from t where a not 5")

    def test_between_requires_and(self, db):
        with pytest.raises(ParseError):
            parse_select("select x from t where a between 1 2")

    def test_in_requires_parentheses(self, db):
        with pytest.raises(ParseError):
            parse_select("select x from t where a in 1, 2")

    def test_like_requires_string_literal(self, db):
        with pytest.raises(ParseError):
            parse_select("select x from t where s like 5")
