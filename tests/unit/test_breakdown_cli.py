"""Unit tests for the per-segment breakdown and the CLI."""

import pytest

from repro.__main__ import build_parser, main
from repro.core.breakdown import (
    attribute_error,
    render_breakdown,
    segment_progress,
    time_breakdown,
)
from repro.workloads import queries, tpcr


@pytest.fixture(scope="module")
def finished_run():
    db = tpcr.build_database(scale=0.002)
    return db, db.execute_with_progress(queries.Q2)


class TestSegmentBreakdown:
    def test_one_row_per_segment(self, finished_run):
        db, monitored = finished_run
        rows = segment_progress(
            monitored.indicator.snapshot(), db.config.page_size,
            monitored.indicator.tracker,
        )
        assert len(rows) == len(monitored.indicator.segments)

    def test_finished_segments_fully_done(self, finished_run):
        db, monitored = finished_run
        rows = segment_progress(
            monitored.indicator.snapshot(), db.config.page_size,
            monitored.indicator.tracker,
        )
        assert all(r.status == "finished" for r in rows)
        assert all(r.fraction_done == pytest.approx(1.0) for r in rows)
        assert all(r.p == 1.0 for r in rows)

    def test_drift_identifies_lineitem_error(self, finished_run):
        # The misestimated segment is the one fed by the lineitem scan
        # (default selectivity 1/3 vs true 1 -> ~3x drift).
        db, monitored = finished_run
        rows = segment_progress(
            monitored.indicator.snapshot(), db.config.page_size,
            monitored.indicator.tracker,
        )
        worst = attribute_error(rows)
        assert worst is not None
        assert worst.estimate_drift == pytest.approx(3.0, rel=0.1)

    def test_time_breakdown_sums_to_at_least_elapsed(self, finished_run):
        # Segments can overlap (pipelining), so their spans sum to >= the
        # longest one and the last segment ends at query completion.
        db, monitored = finished_run
        rows = segment_progress(
            monitored.indicator.snapshot(), db.config.page_size,
            monitored.indicator.tracker,
        )
        spans = time_breakdown(rows)
        assert len(spans) == len(rows)
        assert all(seconds >= 0 for _, seconds in spans)

    def test_render_contains_labels(self, finished_run):
        db, monitored = finished_run
        text = monitored.indicator.describe_segments()
        assert "hash build" in text
        assert "output" in text

    def test_breakdown_without_tracker(self, finished_run):
        db, monitored = finished_run
        rows = segment_progress(
            monitored.indicator.snapshot(), db.config.page_size, tracker=None
        )
        assert all(r.started_at is None for r in rows)


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_runs(self, capsys):
        code = main(["demo", "--query", "Q1", "--scale", "0.001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Plan for Q1" in out
        assert "Segment breakdown" in out

    def test_demo_unknown_query(self, capsys):
        assert main(["demo", "--query", "Q9", "--scale", "0.001"]) == 2

    def test_sql_command(self, capsys):
        code = main(
            ["sql", "select count(*) from customer", "--scale", "0.001"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 row(s)" in out

    def test_figures_command(self, capsys):
        code = main(["figures", "--query", "Q1", "--scale", "0.001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated cost" in out
        assert "completed %" in out

    def test_figures_with_interference(self, capsys):
        code = main(
            ["figures", "--query", "Q1", "--scale", "0.001", "--interference", "cpu"]
        )
        assert code == 0
