"""Unit tests for pages, heap files, the simulated disk and buffer pool."""

import pytest

from repro.config import CostModelConfig
from repro.errors import StorageError
from repro.sim.clock import VirtualClock
from repro.sim.load import IO
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.page import Page
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string


@pytest.fixture
def disk():
    return SimulatedDisk(VirtualClock(), CostModelConfig())


@pytest.fixture
def schema():
    return Schema([Column("k", INTEGER), Column("s", string(50))])


class TestPage:
    def test_empty_page_accepts_oversized_row(self):
        page = Page(100)
        assert page.fits(500)  # a page never stays empty

    def test_append_and_len(self):
        page = Page(1000)
        page.append((1, "a"), 30)
        page.append((2, "b"), 30)
        assert len(page) == 2
        assert page.bytes_used == 60

    def test_fits_respects_budget(self):
        page = Page(100)
        page.append((1,), 60)
        assert page.fits(40)
        assert not page.fits(41)

    def test_append_overflow_raises(self):
        page = Page(100)
        page.append((1,), 80)
        with pytest.raises(StorageError):
            page.append((2,), 30)

    def test_rows_stored_as_tuples(self):
        page = Page(100)
        page.append([1, "x"], 10)
        assert page.rows[0] == (1, "x")
        assert isinstance(page.rows[0], tuple)


class TestHeapFile:
    def test_bulk_load_counts(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=512)
        heap.bulk_load([(i, f"val{i}") for i in range(100)])
        assert heap.num_tuples == 100
        assert heap.num_pages > 1
        assert heap.total_bytes > 0

    def test_bulk_load_charges_no_io(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=512)
        heap.bulk_load([(i, "x") for i in range(100)])
        assert disk.clock.now == 0.0
        assert disk.writes == 0

    def test_temp_append_charges_io(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=256, temp=True)
        for i in range(50):
            heap.append((i, "payload"))
        heap.flush()
        assert disk.writes == heap.num_pages
        assert disk.clock.now > 0.0

    def test_iter_rows_roundtrip(self, disk, schema):
        rows = [(i, f"s{i}") for i in range(37)]
        heap = HeapFile("t", schema, disk, page_size=256)
        heap.bulk_load(rows)
        assert list(heap.iter_rows()) == rows

    def test_avg_tuple_width(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=512)
        heap.bulk_load([(1, "ab")])
        assert heap.avg_tuple_width() == schema.row_width((1, "ab"))

    def test_avg_tuple_width_empty(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=512)
        assert heap.avg_tuple_width() == 0.0

    def test_flush_idempotent_on_empty(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=512)
        heap.flush()
        assert heap.num_pages == 0

    def test_drop_releases_file(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=512)
        heap.bulk_load([(1, "a")])
        fid = heap.handle.file_id
        heap.drop()
        with pytest.raises(StorageError):
            disk.file(fid)


class TestSimulatedDisk:
    def test_sequential_read_cheaper_than_random(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=256)
        heap.bulk_load([(i, "x" * 20) for i in range(200)])
        t0 = disk.clock.now
        disk.read_page(heap.handle, 0, sequential=True)
        seq_time = disk.clock.now - t0
        t0 = disk.clock.now
        disk.read_page(heap.handle, 1, sequential=False)
        random_time = disk.clock.now - t0
        assert random_time > seq_time

    def test_read_out_of_range_raises(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=256)
        heap.bulk_load([(1, "a")])
        with pytest.raises(StorageError):
            disk.read_page(heap.handle, 99)

    def test_io_counters(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=256)
        heap.bulk_load([(i, "x") for i in range(100)])
        disk.read_page(heap.handle, 0, sequential=True)
        disk.read_page(heap.handle, 1, sequential=False)
        counters = disk.io_counters()
        assert counters["seq_reads"] == 1
        assert counters["random_reads"] == 1

    def test_charge_io_false_is_free(self, disk, schema):
        heap = HeapFile("t", schema, disk, page_size=256)
        heap.bulk_load([(1, "a")])
        disk.read_page(heap.handle, 0, charge_io=False)
        assert disk.clock.now == 0.0


class TestBufferPool:
    def _loaded(self, disk, schema, pages=10):
        heap = HeapFile("t", schema, disk, page_size=256)
        heap.bulk_load([(i, "x" * 30) for i in range(pages * 5)])
        return heap

    def test_miss_then_hit(self, disk, schema):
        heap = self._loaded(disk, schema)
        pool = BufferPool(disk, 4, CostModelConfig())
        pool.get_page(heap.handle, 0)
        assert pool.misses == 1
        pool.get_page(heap.handle, 0)
        assert pool.hits == 1

    def test_hit_is_cheaper_than_miss(self, disk, schema):
        heap = self._loaded(disk, schema)
        pool = BufferPool(disk, 4, CostModelConfig())
        t0 = disk.clock.now
        pool.get_page(heap.handle, 0)
        miss_time = disk.clock.now - t0
        t0 = disk.clock.now
        pool.get_page(heap.handle, 0)
        hit_time = disk.clock.now - t0
        assert hit_time < miss_time

    def test_lru_eviction(self, disk, schema):
        heap = self._loaded(disk, schema)
        pool = BufferPool(disk, 2, CostModelConfig())
        pool.get_page(heap.handle, 0)
        pool.get_page(heap.handle, 1)
        pool.get_page(heap.handle, 2)  # evicts page 0
        assert pool.num_cached == 2
        pool.get_page(heap.handle, 0)
        assert pool.misses == 4

    def test_lru_touch_reorders(self, disk, schema):
        heap = self._loaded(disk, schema)
        pool = BufferPool(disk, 2, CostModelConfig())
        pool.get_page(heap.handle, 0)
        pool.get_page(heap.handle, 1)
        pool.get_page(heap.handle, 0)  # page 0 is now most recent
        pool.get_page(heap.handle, 2)  # evicts page 1
        pool.get_page(heap.handle, 0)
        assert pool.hits == 2

    def test_clear_cold_starts(self, disk, schema):
        heap = self._loaded(disk, schema)
        pool = BufferPool(disk, 4, CostModelConfig())
        pool.get_page(heap.handle, 0)
        pool.clear()
        pool.get_page(heap.handle, 0)
        assert pool.misses == 2

    def test_invalidate_file(self, disk, schema):
        heap = self._loaded(disk, schema)
        pool = BufferPool(disk, 4, CostModelConfig())
        pool.get_page(heap.handle, 0)
        pool.invalidate_file(heap.handle)
        assert pool.num_cached == 0

    def test_hit_rate(self, disk, schema):
        heap = self._loaded(disk, schema)
        pool = BufferPool(disk, 4, CostModelConfig())
        assert pool.hit_rate() == 0.0
        pool.get_page(heap.handle, 0)
        pool.get_page(heap.handle, 0)
        assert pool.hit_rate() == pytest.approx(0.5)

    def test_zero_capacity_rejected(self, disk):
        with pytest.raises(ValueError):
            BufferPool(disk, 0, CostModelConfig())
