"""Unit tests for plan segmentation and dominant-input selection."""

import pytest

from repro.config import SystemConfig
from repro.core.segments import build_segments, initial_total_cost_bytes
from repro.planner.physical import HashJoinNode
from repro.workloads import queries, tpcr


def segment_plan(db, sql):
    plan = db.prepare(sql)
    return plan, build_segments(plan.root)


class TestScanQuery:
    def test_single_segment(self, tiny_tpcr):
        _, segs = segment_plan(tiny_tpcr, queries.Q1)
        assert len(segs) == 1
        assert segs[0].final

    def test_single_base_input_dominant(self, tiny_tpcr):
        _, segs = segment_plan(tiny_tpcr, queries.Q1)
        (inp,) = segs[0].inputs
        assert inp.kind == "base"
        assert inp.dominant
        assert inp.label == "lineitem"

    def test_final_segment_cost_excludes_output(self, tiny_tpcr):
        _, segs = segment_plan(tiny_tpcr, queries.Q1)
        seg = segs[0]
        assert seg.initial_cost_bytes() == pytest.approx(
            seg.inputs[0].est_rows * seg.inputs[0].est_width
        )

    def test_scan_annotated_with_input_ref(self, tiny_tpcr):
        plan, segs = segment_plan(tiny_tpcr, queries.Q1)
        scan = plan.root.child
        assert scan.pi_input_ref == (0, 0)


class TestInMemoryHashJoin:
    SQL = "select c.acctbal from customer c, orders o where c.custkey = o.custkey"

    def test_two_segments(self, tiny_tpcr):
        _, segs = segment_plan(tiny_tpcr, self.SQL)
        assert len(segs) == 2
        assert not segs[0].final
        assert segs[1].final

    def test_build_segment_first(self, tiny_tpcr):
        _, segs = segment_plan(tiny_tpcr, self.SQL)
        assert segs[0].inputs[0].label == "customer"

    def test_probe_segment_dominant_is_probe_stream(self, tiny_tpcr):
        # Rule 2b: the probe relation is the dominant input.
        _, segs = segment_plan(tiny_tpcr, self.SQL)
        probe_seg = segs[1]
        dominants = [i for i in probe_seg.inputs if i.dominant]
        assert len(dominants) == 1
        assert dominants[0].label == "orders"

    def test_hash_table_is_child_input(self, tiny_tpcr):
        _, segs = segment_plan(tiny_tpcr, self.SQL)
        child_inputs = [i for i in segs[1].inputs if i.kind == "child"]
        assert len(child_inputs) == 1
        assert child_inputs[0].child_segment == 0
        assert not child_inputs[0].dominant

    def test_nodes_tagged_with_segments(self, tiny_tpcr):
        plan, _ = segment_plan(tiny_tpcr, self.SQL)
        join = plan.root.child
        assert isinstance(join, HashJoinNode)
        assert join.build.segment_id == 0
        assert join.segment_id == 1


class TestMultiBatchHashJoin:
    @pytest.fixture
    def db(self):
        return tpcr.build_database(scale=0.002, config=SystemConfig(work_mem_pages=2))

    def test_q2_has_four_segments(self, db):
        _, segs = segment_plan(db, queries.Q2)
        assert len(segs) == 4

    def test_partition_segments_feed_join_segment(self, db):
        _, segs = segment_plan(db, queries.Q2)
        join_seg = segs[3]
        kinds = [i.kind for i in join_seg.inputs]
        assert kinds == ["child", "child"]
        assert {i.child_segment for i in join_seg.inputs} == {1, 2}

    def test_probe_partitions_dominant(self, db):
        # Figure 3: segment S3's dominant input is PB.
        _, segs = segment_plan(db, queries.Q2)
        join_seg = segs[3]
        dominants = [i for i in join_seg.inputs if i.dominant]
        assert len(dominants) == 1
        assert "PB" in dominants[0].label

    def test_lineitem_feeds_probe_partition_segment(self, db):
        _, segs = segment_plan(db, queries.Q2)
        assert segs[2].inputs[0].label == "lineitem"


class TestNestLoopSegment:
    def test_q5_single_segment(self, tiny_tpcr):
        _, segs = segment_plan(tiny_tpcr, queries.Q5)
        assert len(segs) == 1

    def test_outer_dominant_inner_not(self, tiny_tpcr):
        # Rule 2a: the outer relation is the dominant input.
        _, segs = segment_plan(tiny_tpcr, queries.Q5)
        dominants = [i for i in segs[0].inputs if i.dominant]
        others = [i for i in segs[0].inputs if not i.dominant]
        assert len(dominants) == 1
        assert len(others) == 1


class TestSortMergeSegments:
    @pytest.fixture
    def db(self):
        db = tpcr.build_database(scale=0.002)
        db.config = db.config.with_planner(
            enable_hashjoin=False, enable_nestloop=False
        )
        return db

    SQL = "select c.acctbal from customer c, orders o where c.custkey = o.custkey"

    def test_three_segments(self, db):
        _, segs = segment_plan(db, self.SQL)
        assert len(segs) == 3

    def test_both_run_inputs_dominant(self, db):
        # Rule 2c: a sort-merge segment has two dominant inputs.
        _, segs = segment_plan(db, self.SQL)
        merge_seg = segs[2]
        assert len(merge_seg.inputs) == 2
        assert all(i.dominant for i in merge_seg.inputs)

    def test_sort_segments_pass_cardinality_through(self, db):
        _, segs = segment_plan(db, self.SQL)
        for seg in segs[:2]:
            assert seg.est_output_rows == pytest.approx(
                seg.card_factor * max(seg.inputs[0].est_rows, 1e-9), rel=1e-6
            )


class TestInitialCost:
    def test_total_cost_sums_segments(self, tiny_tpcr):
        _, segs = segment_plan(tiny_tpcr, queries.Q2)
        assert initial_total_cost_bytes(segs) == pytest.approx(
            sum(s.initial_cost_bytes() for s in segs)
        )

    def test_intermediate_bytes_double_counted(self, tiny_tpcr):
        # A byte produced by a segment is counted at its output AND as the
        # consumer's input (Section 4.5).
        _, segs = segment_plan(
            tiny_tpcr,
            "select c.acctbal from customer c, orders o where c.custkey = o.custkey",
        )
        build, probe = segs
        hash_input = [i for i in probe.inputs if i.kind == "child"][0]
        assert hash_input.est_rows * hash_input.est_width == pytest.approx(
            build.est_output_rows * build.est_output_width
        )

    def test_card_factor_reproduces_estimate(self, tiny_tpcr):
        _, segs = segment_plan(tiny_tpcr, queries.Q2)
        for seg in segs:
            product = 1.0
            for i in seg.inputs:
                product *= max(i.est_rows, 1e-9)
            assert seg.card_factor * product == pytest.approx(
                seg.est_output_rows, rel=1e-6
            )
