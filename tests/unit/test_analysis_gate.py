"""Unit tests: the pre-execution verification gate and runtime guard."""

from __future__ import annotations

import warnings

import pytest

from repro.analysis.gate import (
    PlanVerificationError,
    PlanVerificationWarning,
    gate_segments,
    resolve_verify_mode,
)
from repro.config import SystemConfig
from repro.core.indicator import ProgressIndicator
from repro.core.segments import build_segments
from repro.database import Database
from repro.errors import ExecutionError, ProgressError
from repro.executor.base import ExecContext
from repro.executor.runtime import check_tracker_alignment, run_query
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER


def make_db(**config_kwargs) -> Database:
    db = Database(config=SystemConfig(**config_kwargs))
    db.create_table(
        "t",
        Schema([Column("a", INTEGER), Column("b", INTEGER)]),
        [(i, i % 5) for i in range(120)],
    )
    db.create_table(
        "u",
        Schema([Column("a", INTEGER), Column("c", INTEGER)]),
        [(i % 60, i) for i in range(200)],
    )
    db.analyze()
    return db


def broken_segments(db):
    """A segmented plan with one invariant deliberately violated."""
    planned = db.prepare("select t.b, count(*) from t group by t.b")
    specs = build_segments(planned.root)
    specs[0].card_factor *= 7.0
    return planned.root, specs


class TestResolveVerifyMode:
    def test_env_var_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "off")
        assert resolve_verify_mode(SystemConfig()) == "off"

    def test_config_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        config = SystemConfig().with_progress(verify_mode="strict")
        assert resolve_verify_mode(config) == "strict"

    def test_default_is_warn(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert resolve_verify_mode(SystemConfig()) == "warn"
        assert resolve_verify_mode(None) == "warn"

    def test_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "loud")
        with pytest.raises(ProgressError):
            resolve_verify_mode(SystemConfig())


class TestGateSegments:
    def test_off_skips_verification(self):
        root, specs = broken_segments(make_db())
        assert gate_segments(root, specs, mode="off") == []

    def test_warn_reports_and_continues(self):
        root, specs = broken_segments(make_db())
        with pytest.warns(PlanVerificationWarning):
            violations = gate_segments(root, specs, mode="warn")
        assert violations and violations[0].rule == "card-factor"

    def test_strict_raises(self):
        root, specs = broken_segments(make_db())
        with pytest.raises(PlanVerificationError) as exc:
            gate_segments(root, specs, mode="strict", label="broken")
        assert exc.value.label == "broken"
        assert any(v.rule == "card-factor" for v in exc.value.violations)

    def test_clean_plan_passes_strict(self):
        db = make_db()
        planned = db.prepare("select * from t")
        specs = build_segments(planned.root)
        assert gate_segments(planned.root, specs, mode="strict") == []


class TestEngineWiring:
    def test_indicator_gates_on_construction(self, monkeypatch):
        """A plan whose annotations were corrupted after planning is
        rejected before execution starts (strict mode)."""
        monkeypatch.setenv("REPRO_VERIFY", "strict")
        db = make_db()
        planned = db.prepare("select t.a, u.c from t, u where t.a = u.a")
        # Corrupt the plan the way a buggy planner rewrite would; the
        # poisoned estimate survives the indicator's own re-segmentation.
        planned.root.est_rows = float("nan")
        with pytest.raises(PlanVerificationError):
            ProgressIndicator(planned, db.clock, db.config)

    def test_indicator_warn_mode_still_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "warn")
        db = make_db()
        planned = db.prepare("select t.a, u.c from t, u where t.a = u.a")
        planned.root.est_rows = float("nan")
        with pytest.warns(PlanVerificationWarning):
            ProgressIndicator(planned, db.clock, db.config)

    def test_fast_path_gated_in_strict_mode(self, monkeypatch):
        """Database.execute verifies before running when strict."""
        monkeypatch.setenv("REPRO_VERIFY", "strict")
        db = make_db()
        result = db.execute("select count(*) from t")
        assert result.rows == [(120,)]

    def test_database_verify_reports_clean(self):
        db = make_db()
        assert db.verify("select t.b, count(*) from t group by t.b") == []


class TestTrackerAlignment:
    def test_mismatched_tracker_rejected(self):
        """Running a plan against a tracker built for a different plan
        fails fast instead of corrupting counters."""
        db = make_db()
        small = db.prepare("select * from t")
        big = db.prepare("select t.b, count(*) from t, u where t.a = u.a group by t.b")
        indicator = ProgressIndicator(small, db.clock, db.config)
        build_segments(big.root)  # annotate with ids the small tracker lacks
        ctx = ExecContext(
            db.clock, db.disk, db.buffer_pool, db.config, tracker=indicator.tracker
        )
        with pytest.raises(ExecutionError):
            run_query(big, ctx)

    def test_aligned_tracker_passes(self):
        db = make_db()
        planned = db.prepare("select t.b, count(*) from t group by t.b")
        indicator = ProgressIndicator(planned, db.clock, db.config)
        check_tracker_alignment(planned.root, indicator.tracker)
