"""Unit tests: the TraceBus event stream and its typed event vocabulary."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.obs.bus import TraceBus
from repro.obs.events import (
    EVENT_KINDS,
    BufferAccess,
    CardinalityRefined,
    PageRead,
    QueryFinished,
    QueryStarted,
    SegmentFinished,
    SegmentMeta,
    SegmentStarted,
    TickerFired,
    TraceEvent,
    event_from_dict,
)


def _started(t: float = 0.0) -> QueryStarted:
    return QueryStarted(
        t=t,
        label="q",
        num_segments=1,
        initial_cost_pages=10.0,
        segments=(
            SegmentMeta(
                id=0,
                label="scan",
                final=True,
                inputs=(("base", "t", True, None),),
                est_output_rows=100.0,
                est_cost_bytes=81920.0,
            ),
        ),
    )


class TestBusOrdering:
    def test_events_recorded_in_emission_order(self):
        bus = TraceBus()
        bus.emit(_started(0.0))
        bus.emit(SegmentStarted(t=1.0, segment_id=0))
        bus.emit(SegmentFinished(t=5.0, segment_id=0, done_bytes=8192.0,
                                 output_rows=10))
        bus.emit(QueryFinished(t=5.0, elapsed=5.0, done_pages=1.0,
                               actual_cost_pages=1.0))
        assert [e.kind for e in bus.events] == [
            "query_started", "segment_started", "segment_finished",
            "query_finished",
        ]
        assert len(bus) == 4

    def test_timestamps_must_be_monotonic(self):
        bus = TraceBus()
        bus.emit(SegmentStarted(t=10.0, segment_id=0))
        with pytest.raises(TraceError, match="non-monotonic"):
            bus.emit(SegmentStarted(t=9.0, segment_id=1))

    def test_equal_timestamps_allowed(self):
        bus = TraceBus()
        bus.emit(SegmentStarted(t=3.0, segment_id=0))
        bus.emit(SegmentStarted(t=3.0, segment_id=1))
        assert len(bus) == 2

    def test_tiny_float_jitter_tolerated(self):
        bus = TraceBus()
        bus.emit(TickerFired(t=1.0, name="speed", interval=1.0))
        bus.emit(TickerFired(t=1.0 - 1e-12, name="report", interval=10.0))
        assert len(bus) == 2

    def test_recorded_stream_is_sorted(self):
        """The invariant the exporters and the audit rely on."""
        bus = TraceBus()
        for t in (0.0, 0.5, 0.5, 2.0, 2.0, 7.5):
            bus.emit(SegmentStarted(t=t, segment_id=0))
        times = [e.t for e in bus.events]
        assert times == sorted(times)


class TestBusSubscribers:
    def test_subscriber_sees_every_event(self):
        bus = TraceBus()
        seen: list[TraceEvent] = []
        bus.subscribe(seen.append)
        bus.emit(SegmentStarted(t=0.0, segment_id=0))
        bus.emit(PageRead(t=1.0, file_id=1, page_no=2, sequential=True))
        assert [e.kind for e in seen] == ["segment_started", "page_read"]

    def test_unsubscribe_stops_delivery(self):
        bus = TraceBus()
        seen: list[TraceEvent] = []
        unsubscribe = bus.subscribe(seen.append)
        bus.emit(SegmentStarted(t=0.0, segment_id=0))
        unsubscribe()
        unsubscribe()  # idempotent
        bus.emit(SegmentStarted(t=1.0, segment_id=1))
        assert len(seen) == 1

    def test_counts_and_of_kind(self):
        bus = TraceBus()
        bus.emit(SegmentStarted(t=0.0, segment_id=0))
        bus.emit(BufferAccess(t=0.5, file_id=1, page_no=0, hit=False))
        bus.emit(BufferAccess(t=0.6, file_id=1, page_no=0, hit=True))
        assert bus.counts() == {"segment_started": 1, "buffer_access": 2}
        hits = [e for e in bus.of_kind("buffer_access") if e.hit]
        assert len(hits) == 1


class TestEventWireFormat:
    def test_every_kind_is_registered_and_unique(self):
        assert len(EVENT_KINDS) == 30
        assert "event" not in EVENT_KINDS  # base class is not wire-visible

    def test_v1_payload_replays_without_new_fields(self):
        """Schema evolution: fields added with defaults (schema v2's
        ``ReportEmitted.estimator``) must not break old-trace replay."""
        payload = {
            "kind": "report_emitted", "t": 10.0, "elapsed": 10.0,
            "done_pages": 5.0, "est_cost_pages": 50.0, "fraction_done": 0.1,
            "speed_pages_per_sec": 1.0, "est_remaining_seconds": 45.0,
            "current_segment": 0, "finished": False, "degraded": False,
        }
        event = event_from_dict(payload)
        assert event.estimator is None

    def test_round_trip_flat_event(self):
        event = CardinalityRefined(
            t=12.5, segment_id=1, input_index=0, label="orders",
            source_from="ne", source_to="overrun",
            est_rows_from=100.0, est_rows_to=150.0,
        )
        assert event_from_dict(event.to_dict()) == event

    def test_round_trip_nested_event(self):
        event = _started(2.0)
        restored = event_from_dict(event.to_dict())
        assert restored == event
        assert isinstance(restored.segments[0], SegmentMeta)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            event_from_dict({"kind": "nope", "t": 0.0})
