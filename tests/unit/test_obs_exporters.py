"""Unit tests: JSONL and Chrome trace exporters, with golden files.

The golden files under ``tests/unit/data/`` pin the wire formats: any
change to the JSONL schema or the Chrome ``trace_event`` mapping shows up
as a diff here.  Regenerate deliberately with::

    PYTHONPATH=src:tests python -c \
        "from unit.test_obs_exporters import regenerate; regenerate()"
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.obs.events import (
    AdmissionDecided,
    CardinalityRefined,
    PageRead,
    QueryFinished,
    QueryShed,
    QueryStarted,
    ReportEmitted,
    SegmentFinished,
    SegmentMeta,
    SegmentStarted,
    SpeedEstimated,
    TenantThrottled,
    TraceEvent,
)
from repro.obs.exporters import (
    chrome_trace,
    read_jsonl,
    span_coverage,
    write_chrome_trace,
    write_jsonl,
)

DATA = Path(__file__).parent / "data"
GOLDEN_JSONL = DATA / "obs_golden.trace.jsonl"
GOLDEN_CHROME = DATA / "obs_golden.trace.json"
#: The schema-v1 JSONL (pre-``estimator`` field), pinned forever: new
#: event fields must be additive-with-defaults so old traces replay.
GOLDEN_V1_JSONL = DATA / "obs_golden_v1.trace.jsonl"
#: The service-layer events (schema v3: admission / shedding / tenants).
GOLDEN_SERVICE_JSONL = DATA / "obs_golden_service.trace.jsonl"


def golden_events() -> list[TraceEvent]:
    """A small, fixed, hand-written trace exercising every export path."""
    return [
        QueryStarted(
            t=0.0, label="golden query", num_segments=2,
            initial_cost_pages=24.0,
            segments=(
                SegmentMeta(id=0, label="sort [SeqScan(t)]", final=False,
                            inputs=(("base", "t", True, None),),
                            est_output_rows=64.0, est_cost_bytes=98304.0),
                SegmentMeta(id=1, label="output", final=True,
                            inputs=(("child", "sort", True, 0),),
                            est_output_rows=64.0, est_cost_bytes=98304.0),
            ),
        ),
        SegmentStarted(t=0.5, segment_id=0),
        PageRead(t=0.5, file_id=3, page_no=0, sequential=True),
        SpeedEstimated(t=1.0, estimator="window", pages_per_sec=2.0),
        CardinalityRefined(
            t=5.0, segment_id=0, input_index=0, label="t",
            source_from="ne", source_to="overrun",
            est_rows_from=64.0, est_rows_to=96.0,
        ),
        SegmentFinished(t=6.0, segment_id=0, done_bytes=98304.0,
                        output_rows=96),
        SegmentStarted(t=6.0, segment_id=1),
        ReportEmitted(
            t=10.0, elapsed=10.0, done_pages=14.0, est_cost_pages=26.0,
            fraction_done=0.5384615384615384, speed_pages_per_sec=2.0,
            est_remaining_seconds=6.0, current_segment=1, finished=False,
        ),
        SegmentFinished(t=16.0, segment_id=1, done_bytes=114688.0,
                        output_rows=96),
        QueryFinished(t=16.0, elapsed=16.0, done_pages=26.0,
                      actual_cost_pages=26.0),
    ]


def golden_service_events() -> list[TraceEvent]:
    """A fixed overload episode: admit, throttle, reject, shed."""
    return [
        AdmissionDecided(
            t=0.0, tenant="acme", query="q1", outcome="admitted",
            reason="capacity available", predicted_cost_pages=218.5,
            inflight=0, queued=0,
        ),
        TenantThrottled(
            t=0.0, tenant="acme", query="q2",
            inflight_cost_pages=218.5, budget_pages=300.0, queued=0,
        ),
        AdmissionDecided(
            t=0.0, tenant="acme", query="q2", outcome="queued",
            reason="tenant 'acme' over cost budget "
            "(218 + 218 > 300 pages)",
            predicted_cost_pages=218.5, inflight=1, queued=0,
        ),
        AdmissionDecided(
            t=0.5, tenant="acme", query="q3", outcome="rejected",
            reason="admission queue full (1 waiting, limit 1; "
            "tenant 'acme' over cost budget (218 + 218 > 300 pages))",
            predicted_cost_pages=218.5, inflight=1, queued=1,
        ),
        QueryShed(
            t=12.0, elapsed=12.0, done_pages=58.0,
            fraction_done=0.2654416857925202,
            reason="predicted to miss deadline by 31.2s "
            "(2 consecutive over-budget estimates)",
        ),
    ]


def regenerate() -> None:  # pragma: no cover - developer tool
    DATA.mkdir(exist_ok=True)
    write_jsonl(golden_events(), GOLDEN_JSONL)
    write_chrome_trace(golden_events(), GOLDEN_CHROME)
    write_jsonl(golden_service_events(), GOLDEN_SERVICE_JSONL)


class TestJsonl:
    def test_matches_golden_file(self, tmp_path):
        out = tmp_path / "t.jsonl"
        assert write_jsonl(golden_events(), out) == len(golden_events())
        assert out.read_text() == GOLDEN_JSONL.read_text()

    def test_round_trip_is_lossless(self):
        buf = io.StringIO()
        write_jsonl(golden_events(), buf)
        buf.seek(0)
        assert read_jsonl(buf) == golden_events()

    def test_read_from_golden_path(self):
        assert read_jsonl(GOLDEN_JSONL) == golden_events()

    def test_schema_v1_golden_still_replays(self):
        """Traces recorded before ``ReportEmitted.estimator`` existed
        (schema v1) must replay into the current vocabulary unchanged —
        the missing field fills from its dataclass default."""
        assert read_jsonl(GOLDEN_V1_JSONL) == golden_events()


class TestServiceGolden:
    """Schema v3 pins the service vocabulary (admission / shedding /
    tenants): the golden file is the wire contract for dashboards that
    consume ``admission_decided`` / ``tenant_throttled`` / ``query_shed``."""

    def test_matches_golden_file(self, tmp_path):
        out = tmp_path / "svc.jsonl"
        events = golden_service_events()
        assert write_jsonl(events, out) == len(events)
        assert out.read_text() == GOLDEN_SERVICE_JSONL.read_text()

    def test_round_trip_is_lossless(self):
        buf = io.StringIO()
        write_jsonl(golden_service_events(), buf)
        buf.seek(0)
        assert read_jsonl(buf) == golden_service_events()

    def test_read_from_golden_path(self):
        assert read_jsonl(GOLDEN_SERVICE_JSONL) == golden_service_events()

    def test_shed_reason_defaults_fill(self):
        """A ``query_shed`` recorded without ``reason`` (the field has a
        default) must replay — the additive-with-defaults schema rule."""
        line = json.dumps(
            {"kind": "query_shed", "t": 1.0, "elapsed": 1.0,
             "done_pages": 2.0, "fraction_done": 0.1}
        )
        events = read_jsonl(io.StringIO(line + "\n"))
        assert events == [
            QueryShed(t=1.0, elapsed=1.0, done_pages=2.0, fraction_done=0.1)
        ]
        assert events[0].reason == "deadline"


class TestChromeTrace:
    def test_matches_golden_file(self, tmp_path):
        out = tmp_path / "t.json"
        write_chrome_trace(golden_events(), out)
        assert json.loads(out.read_text()) == json.loads(
            GOLDEN_CHROME.read_text()
        )

    def test_schema_basics(self):
        doc = chrome_trace(golden_events())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "C", "i"}
        for e in doc["traceEvents"]:
            assert e["pid"] == 1
            if e["ph"] != "M":
                assert e["ts"] >= 0

    def test_virtual_time_in_microseconds(self):
        doc = chrome_trace(golden_events())
        root = [e for e in doc["traceEvents"]
                if e["ph"] == "X" and e["cat"] == "query"]
        assert len(root) == 1
        assert root[0]["ts"] == 0.0
        assert root[0]["dur"] == pytest.approx(16.0 * 1_000_000.0)

    def test_segment_spans_on_own_threads(self):
        doc = chrome_trace(golden_events())
        seg = {e["tid"]: e for e in doc["traceEvents"]
               if e["ph"] == "X" and e["cat"] == "segment"}
        assert set(seg) == {1, 2}
        assert seg[1]["args"]["self_bytes"] == 98304.0
        assert seg[2]["args"]["subtree_bytes"] == 114688.0 + 98304.0

    def test_full_span_coverage(self):
        assert span_coverage(chrome_trace(golden_events())) == pytest.approx(1.0)

    def test_coverage_zero_without_root(self):
        events = [e for e in golden_events()
                  if not isinstance(e, QueryFinished)]
        assert span_coverage(chrome_trace(events)) == 0.0
