"""Unit tests: transitive may-yield summaries (analysis.flow)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.flow.callgraph import build_callgraph
from repro.analysis.flow.summaries import (
    class_pulse_summaries,
    compute_summaries,
    operator_pulse_summaries,
)

from tests.unit.test_flow_callgraph import build_pkg

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

PULSE_CHAIN = (
    "PULSE = object()\n"
    "def origin():\n"
    "    yield 1\n"
    "    yield PULSE\n"
    "def forwarder(src):\n"
    "    for item in origin():\n"
    "        if item is PULSE:\n"
    "            yield PULSE\n"
    "        else:\n"
    "            yield item\n"
    "def driver():\n"
    "    return list(forwarder(None))\n"
    "def bystander():\n"
    "    yield 2\n"
)


class TestFixpoint:
    @pytest.fixture()
    def summaries(self, tmp_path):
        return compute_summaries(build_pkg(tmp_path, {"m": PULSE_CHAIN}))

    def test_origin_is_origin_and_may_pulse(self, summaries):
        s = summaries["pkg.m.origin"]
        assert s.origin
        assert s.may_pulse

    def test_forwarder_may_pulse_without_originating(self, summaries):
        s = summaries["pkg.m.forwarder"]
        assert not s.origin
        assert s.may_pulse

    def test_caller_inherits_may_pulse_transitively(self, summaries):
        s = summaries["pkg.m.driver"]
        assert not s.origin
        assert s.may_pulse

    def test_bystander_generator_stays_silent(self, summaries):
        s = summaries["pkg.m.bystander"]
        assert not s.origin
        assert not s.may_pulse

    def test_yields_pulse_distinguishes_callers_from_yielders(self, summaries):
        # origin and forwarder put PULSE on the wire themselves; driver
        # only reaches one through a call.
        assert summaries["pkg.m.origin"].yields_pulse
        assert summaries["pkg.m.forwarder"].yields_pulse
        assert not summaries["pkg.m.driver"].yields_pulse

    def test_guard_only_forwarder_seeds_may_pulse(self, tmp_path):
        # A frame whose only pulse yield is the name-forward idiom must
        # still be may_pulse: its consumer does see PULSE markers.
        summaries = compute_summaries(build_pkg(tmp_path, {"m": (
            "PULSE = object()\n"
            "def fwd(src):\n"
            "    for item in src:\n"
            "        if item is PULSE:\n"
            "            pass\n"
            "        yield item\n"
        )}))
        s = summaries["pkg.m.fwd"]
        assert s.may_pulse
        assert not s.origin


class TestClassSummaries:
    def test_class_rollup_covers_methods(self, tmp_path):
        graph = build_pkg(tmp_path, {"m": (
            "PULSE = object()\n"
            "class Scan:\n"
            "    def rows(self):\n"
            "        yield PULSE\n"
            "    def close(self):\n"
            "        pass\n"
            "class Plain:\n"
            "    def rows(self):\n"
            "        yield 1\n"
        )})
        by_class = class_pulse_summaries(graph, compute_summaries(graph))
        scan = by_class["pkg.m.Scan"]
        assert scan.may_pulse and scan.origin
        plain = by_class["pkg.m.Plain"]
        assert not plain.may_pulse and not plain.origin


class TestRealTree:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_callgraph(REPO_SRC / "repro")

    @pytest.fixture(scope="class")
    def summaries(self, graph):
        return compute_summaries(graph)

    @pytest.fixture(scope="class")
    def operators(self, graph):
        return operator_pulse_summaries(graph)

    def test_pull_helper_forwards_pulses(self, summaries):
        s = summaries["repro.executor.base.pull"]
        assert s.may_pulse
        assert not s.origin

    def test_seq_scan_originates(self, operators):
        s = operators["SeqScanOp"]
        assert s.origin and s.may_pulse

    def test_index_scan_originates(self, operators):
        s = operators["IndexScanOp"]
        assert s.origin and s.may_pulse

    def test_sort_originates(self, operators):
        assert operators["SortOp"].origin

    def test_hash_join_originates(self, operators):
        assert operators["HashJoinOp"].origin

    def test_project_forwards_only(self, operators):
        s = operators["ProjectOp"]
        assert s.may_pulse and not s.origin

    def test_merge_join_forwards_via_pull(self, operators):
        s = operators["MergeJoinOp"]
        assert s.may_pulse and not s.origin

    def test_nest_loop_forwards_only(self, operators):
        s = operators["NestLoopOp"]
        assert s.may_pulse and not s.origin

    def test_every_executor_operator_is_covered(self, operators):
        expected = {
            "SeqScanOp", "IndexScanOp", "SortOp", "HashJoinOp",
            "MergeJoinOp", "NestLoopOp", "ProjectOp", "FilterOp",
            "DistinctOp", "LimitOp", "HashAggregateOp",
        }
        assert expected <= set(operators)

    def test_every_operator_rows_method_may_pulse(self, operators):
        silent = {
            name for name, s in operators.items()
            if not s.may_pulse and name != "Operator"
        }
        assert silent == set()
