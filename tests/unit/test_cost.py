"""Unit tests for the optimizer's search-cost formulas."""

import pytest

from repro.planner.cost import (
    Cost,
    hash_join_batches,
    hash_join_cost,
    index_scan_cost,
    merge_join_cost,
    nestloop_cost,
    pages_for_bytes,
    seq_scan_cost,
    sort_cost,
)

PAGE = 8192
WORK_MEM = 32 * PAGE


class TestCostArithmetic:
    def test_add(self):
        a = Cost(1.0, 0.5)
        b = Cost(2.0, 1.5)
        assert (a + b).total == 3.0
        assert (a + b).io_pages == 2.0

    def test_zero(self):
        assert Cost.zero().total == 0.0

    def test_pages_for_bytes(self):
        assert pages_for_bytes(PAGE * 3, PAGE) == 3.0
        assert pages_for_bytes(100.0, PAGE) == pytest.approx(100.0 / PAGE)


class TestScanCosts:
    def test_seq_scan_grows_with_pages(self):
        small = seq_scan_cost(10, 1000, 0)
        big = seq_scan_cost(100, 10000, 0)
        assert big.total > small.total

    def test_filters_add_cpu(self):
        assert seq_scan_cost(10, 1000, 2).total > seq_scan_cost(10, 1000, 0).total

    def test_index_scan_cheap_for_selective_probe(self):
        # 1 matching tuple out of a million-row table.
        idx = index_scan_cost(3, 1, 1, 1, 0)
        seq = seq_scan_cost(10_000, 1_000_000, 1)
        assert idx.total < seq.total

    def test_index_scan_expensive_for_full_range(self):
        idx = index_scan_cost(3, 2000, 1_000_000, 10_000, 0)
        seq = seq_scan_cost(10_000, 1_000_000, 1)
        assert idx.total > seq.total


class TestHashJoin:
    def test_batches_one_when_fits(self):
        assert hash_join_batches(WORK_MEM - 1, WORK_MEM) == 1

    def test_batches_grow_with_build_size(self):
        assert hash_join_batches(WORK_MEM * 3.5, WORK_MEM) == 4

    def test_smaller_build_side_cheaper(self):
        # The asymmetry the paper's plans rely on: hash the small side.
        small_build = hash_join_cost(100, 100 * 40, 10_000, 10_000 * 40, 5000, 1, PAGE)
        big_build = hash_join_cost(10_000, 10_000 * 40, 100, 100 * 40, 5000, 1, PAGE)
        assert small_build.total < big_build.total

    def test_multi_batch_pays_io(self):
        in_mem = hash_join_cost(1000, 1000 * 40, 1000, 1000 * 40, 100, 1, PAGE)
        spilled = hash_join_cost(1000, 1000 * 40, 1000, 1000 * 40, 100, 3, PAGE)
        assert spilled.io_pages > in_mem.io_pages
        assert spilled.total > in_mem.total


class TestSortAndMerge:
    def test_in_memory_sort_has_no_io(self):
        assert sort_cost(1000, 1000 * 50, WORK_MEM, PAGE).io_pages == 0.0

    def test_external_sort_pays_write_and_read(self):
        nbytes = WORK_MEM * 4
        cost = sort_cost(100_000, nbytes, WORK_MEM, PAGE)
        assert cost.io_pages == pytest.approx(2.0 * nbytes / PAGE)

    def test_sort_trivial_input_free(self):
        assert sort_cost(1, 50, WORK_MEM, PAGE).total == 0.0

    def test_merge_join_linear(self):
        small = merge_join_cost(100, 100, 100)
        big = merge_join_cost(10_000, 10_000, 100)
        assert big.total > small.total


class TestNestLoop:
    def test_quadratic_in_inputs(self):
        small = nestloop_cost(100, 100, 100 * 40, WORK_MEM, 1, PAGE)
        big = nestloop_cost(1000, 1000, 1000 * 40, WORK_MEM, 1, PAGE)
        assert big.total > small.total * 50

    def test_spilled_inner_pays_rescans(self):
        fits = nestloop_cost(1000, 100, WORK_MEM - 1, WORK_MEM, 1, PAGE)
        spills = nestloop_cost(1000, 100, WORK_MEM * 4, WORK_MEM, 1, PAGE)
        assert spills.io_pages > fits.io_pages

    def test_nestloop_loses_to_hash_join_on_large_equi(self):
        nl = nestloop_cost(10_000, 10_000, 10_000 * 40, WORK_MEM, 1, PAGE)
        hj = hash_join_cost(10_000, 10_000 * 40, 10_000, 10_000 * 40, 10_000, 2, PAGE)
        assert hj.total < nl.total
