"""Unit tests for the pluggable estimator layer: the registry, the three
blend rules, history-learned corrections, the online selector, and the
deprecated ``core.refine`` shim."""

import pytest

from repro.core.segments import SegmentInput, SegmentSpec
from repro.estimators import (
    DEFAULT_ESTIMATOR,
    ENSEMBLE,
    EstimatorContext,
    estimator_names,
    make_estimator,
    register_estimator,
)
from repro.estimators.base import EstimateSnapshot, Estimator, SegmentEstimate
from repro.estimators.ensemble import SWITCH_MARGIN, EnsembleEstimator
from repro.estimators.history import (
    MAX_CORRECTION,
    MIN_CORRECTION,
    HistoryEstimator,
    HistoryStore,
    signature_of,
)
from repro.estimators.refinement import (
    DriverNodeEstimator,
    PaperEstimator,
    TotalGetNextEstimator,
)
from repro.executor.work import WorkTracker


def make_spec(seg_id=0, est_out=100.0, final=False):
    inputs = [
        SegmentInput(0, "base", "t", est_rows=1000.0, est_width=40.0, dominant=True)
    ]
    return SegmentSpec(
        id=seg_id,
        label=f"seg{seg_id}",
        inputs=inputs,
        est_output_rows=est_out,
        est_output_width=50.0,
        final=final,
        card_factor=est_out / 1000.0,
    )


def make_tracker(specs):
    return WorkTracker([len(s.inputs) for s in specs], final_segment=specs[-1].id)


def partial_run(specs=None):
    """One segment at p = 0.4 with y = 80 observed outputs (E1 = 100)."""
    specs = specs or [make_spec(final=True)]
    tracker = make_tracker(specs)
    tracker.input_rows(0, 0, 400, 400 * 40.0)
    tracker.output_rows(0, 80, 80 * 50.0)
    return specs, tracker


class TestRegistry:
    def test_builtins_registered(self):
        names = estimator_names()
        assert {"paper", "dne", "tgn", "history", ENSEMBLE} <= set(names)
        assert names[0] == "paper"  # registration order = tie-break order
        assert ENSEMBLE not in estimator_names(include_ensemble=False)

    def test_default_is_paper(self):
        assert DEFAULT_ESTIMATOR == "paper"

    def test_unknown_name_raises(self):
        specs, tracker = partial_run()
        with pytest.raises(ValueError, match="unknown estimator"):
            make_estimator("nope", specs, tracker)

    def test_ensemble_name_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_estimator(ENSEMBLE, lambda specs, tracker, ctx: None)

    def test_ensemble_races_every_registered_candidate(self):
        specs, tracker = partial_run()
        est = make_estimator(ENSEMBLE, specs, tracker)
        assert isinstance(est, EnsembleEstimator)
        candidate_names = tuple(c.name for c in est.candidates)
        assert candidate_names == estimator_names(include_ensemble=False)

    def test_history_factory_binds_context_store(self):
        specs, tracker = partial_run()
        store = HistoryStore()
        est = make_estimator(
            "history", specs, tracker, EstimatorContext(history=store)
        )
        assert isinstance(est, HistoryEstimator)
        assert est.store is store


class TestBlendRules:
    # At p = 0.4, y = 80, E1 = 100 (partial_run's counters).

    def test_paper_blend(self):
        est = PaperEstimator(*partial_run())
        seg = est.snapshot().segments[0]
        assert seg.est_output_rows == pytest.approx(80 + 0.6 * 100.0)

    def test_dne_extrapolates(self):
        est = DriverNodeEstimator(*partial_run())
        seg = est.snapshot().segments[0]
        assert seg.est_output_rows == pytest.approx(80 / 0.4)

    def test_dne_falls_back_to_e1_at_zero_progress(self):
        specs = [make_spec(final=True)]
        est = DriverNodeEstimator(specs, make_tracker(specs))
        assert est.snapshot().segments[0].est_output_rows == pytest.approx(100.0)

    def test_tgn_never_extrapolates(self):
        est = TotalGetNextEstimator(*partial_run())
        seg = est.snapshot().segments[0]
        assert seg.est_output_rows == pytest.approx(100.0)

    def test_tgn_rides_observed_outputs_past_e1(self):
        specs = [make_spec(final=True)]
        tracker = make_tracker(specs)
        tracker.input_rows(0, 0, 400, 400 * 40.0)
        tracker.output_rows(0, 250, 250 * 50.0)  # y already beyond E1
        est = TotalGetNextEstimator(specs, tracker)
        assert est.snapshot().segments[0].est_output_rows == pytest.approx(250.0)

    def test_provenance_is_the_registry_name(self):
        assert PaperEstimator(*partial_run()).provenance == "paper"
        assert DriverNodeEstimator(*partial_run()).provenance == "dne"

    def test_plain_estimators_expose_no_candidates(self):
        assert PaperEstimator(*partial_run()).candidate_estimates() == ()


class TestHistoryStore:
    SIG = ("seg0", (("base", "t"),))

    def test_unseen_signature_is_neutral(self):
        assert HistoryStore().correction(self.SIG) == pytest.approx(1.0)

    def test_single_observation_ratio(self):
        store = HistoryStore()
        store.observe(self.SIG, estimated=100.0, actual=200.0)
        assert store.correction(self.SIG) == pytest.approx(2.0)
        assert store.observations(self.SIG) == 1

    def test_corrections_are_geometric_means(self):
        store = HistoryStore()
        store.observe(self.SIG, estimated=100.0, actual=200.0)  # ratio 2
        store.observe(self.SIG, estimated=100.0, actual=800.0)  # ratio 8
        assert store.correction(self.SIG) == pytest.approx(4.0)

    def test_corrections_clamped_both_ways(self):
        store = HistoryStore()
        store.observe(self.SIG, estimated=1.0, actual=1e9)
        assert store.correction(self.SIG) == pytest.approx(MAX_CORRECTION)
        other = ("seg1", ())
        store.observe(other, estimated=1e9, actual=1.0)
        assert store.correction(other) == pytest.approx(MIN_CORRECTION)

    def test_degenerate_observations_ignored(self):
        store = HistoryStore()
        store.observe(self.SIG, estimated=0.5, actual=100.0)
        store.observe(self.SIG, estimated=100.0, actual=0.0)
        assert len(store) == 0

    def test_signature_is_structural(self):
        spec = make_spec(final=True)
        assert signature_of(spec) == ("seg0", (("base", "t"),))


class TestHistoryEstimator:
    def test_empty_store_is_exactly_the_paper_blend(self):
        specs, tracker = partial_run()
        learned = HistoryEstimator(specs, tracker, HistoryStore())
        baseline = PaperEstimator(specs, tracker)
        assert learned.snapshot() == baseline.snapshot()

    def test_learned_correction_scales_e1(self):
        specs, tracker = partial_run()
        store = HistoryStore()
        store.observe(signature_of(specs[0]), estimated=100.0, actual=200.0)
        est = HistoryEstimator(specs, tracker, store)
        seg = est.snapshot().segments[0]
        # Paper blend with E1 doubled: y + (1-p) * 2*E1.
        assert seg.est_output_rows == pytest.approx(80 + 0.6 * 200.0)

    def test_corrections_bound_at_construction(self):
        specs, tracker = partial_run()
        store = HistoryStore()
        est = HistoryEstimator(specs, tracker, store)
        before = est.snapshot()
        # A mid-flight store update must not move this query's estimate.
        store.observe(signature_of(specs[0]), estimated=100.0, actual=900.0)
        assert est.snapshot() == before

    def test_on_finish_records_only_finished_segments(self):
        specs = [make_spec(seg_id=0), make_spec(seg_id=1, final=True)]
        tracker = make_tracker(specs)
        tracker.input_rows(0, 0, 1000, 1000 * 40.0)
        tracker.output_rows(0, 321, 321 * 50.0)
        tracker.segment_finished(0)
        store = HistoryStore()
        HistoryEstimator(specs, tracker, store).on_finish()
        assert store.observations(signature_of(specs[0])) == 1
        assert store.observations(signature_of(specs[1])) == 0
        # The stored ratio is actual / plan-time estimate: 321 / 100.
        assert store.correction(signature_of(specs[0])) == pytest.approx(3.21)


class Scripted(Estimator):
    """A candidate whose per-segment predictions the test scripts."""

    def __init__(self, name, specs, tracker):
        super().__init__(specs, tracker)
        self.name = name
        self.outputs = {}  # seg id -> predicted output rows
        self.statuses = {}  # seg id -> status
        self.total = 1000.0
        self.done = 0.0

    def snapshot(self):
        segments = [
            SegmentEstimate(
                spec=spec,
                status=self.statuses.get(spec.id, "running"),
                inputs=[],
                p=0.5,
                est_output_rows=self.outputs.get(spec.id, 100.0),
                est_output_width=50.0,
                est_cost_bytes=self.total,
                done_bytes=self.done,
            )
            for spec in self._specs
        ]
        return EstimateSnapshot(
            segments=segments,
            est_total_bytes=self.total,
            done_bytes=self.done,
            current_segment=None,
        )


class TestEnsembleSelector:
    def _pair(self):
        specs = [make_spec(final=True)]
        tracker = make_tracker(specs)
        a = Scripted("a", specs, tracker)
        b = Scripted("b", specs, tracker)
        return specs, tracker, a, b

    def test_requires_candidates(self):
        specs = [make_spec(final=True)]
        with pytest.raises(ValueError):
            EnsembleEstimator(specs, make_tracker(specs), [])

    def test_evidence_free_selector_is_the_first_candidate(self):
        specs, tracker, a, b = self._pair()
        ens = EnsembleEstimator(specs, tracker, [a, b])
        ens.snapshot()
        assert ens.selected_name == "a"
        assert ens.provenance == "ensemble:a"

    def test_switches_past_the_margin(self):
        specs, tracker, a, b = self._pair()
        a.outputs[0] = 1000.0  # will be off by ln(10) > ln 2
        b.outputs[0] = 100.0  # spot on
        ens = EnsembleEstimator(specs, tracker, [a, b])
        ens.snapshot()  # predictions recorded while running
        a.statuses[0] = "finished"
        a.outputs[0] = 100.0  # the finished (exact) cardinality
        b.statuses[0] = "finished"
        ens.snapshot()  # settle + re-select
        assert ens.scores["a"] > SWITCH_MARGIN
        assert ens.scores["b"] == pytest.approx(0.0)
        assert ens.selected_name == "b"
        assert ens.provenance == "ensemble:b"

    def test_keeps_incumbent_within_the_margin(self):
        specs, tracker, a, b = self._pair()
        a.outputs[0] = 150.0  # off by ln(1.5) < ln 2
        b.outputs[0] = 100.0
        ens = EnsembleEstimator(specs, tracker, [a, b])
        ens.snapshot()
        a.statuses[0] = "finished"
        a.outputs[0] = 100.0
        b.statuses[0] = "finished"
        ens.snapshot()
        assert 0.0 < ens.scores["a"] < SWITCH_MARGIN
        assert ens.selected_name == "a"

    def test_reported_fraction_never_decreases(self):
        specs, tracker, a, b = self._pair()
        ens = EnsembleEstimator(specs, tracker, [a, b])
        a.done, a.total = 500.0, 1000.0
        first = ens.snapshot()
        assert first.fraction_done == pytest.approx(0.5)
        a.total = 2000.0  # raw fraction would drop to 0.25
        second = ens.snapshot()
        assert second.est_total_bytes == pytest.approx(1000.0)
        assert second.fraction_done == pytest.approx(0.5)

    def test_candidate_estimates_expose_raw_streams(self):
        specs, tracker, a, b = self._pair()
        ens = EnsembleEstimator(specs, tracker, [a, b])
        a.done, a.total = 500.0, 1000.0
        ens.snapshot()
        a.total = 2000.0  # selected stream clamps; candidates must not
        ens.snapshot()
        cands = ens.candidate_estimates()
        assert [c.name for c in cands] == ["a", "b"]
        assert [c.selected for c in cands] == [True, False]
        by_name = {c.name: c for c in cands}
        assert by_name["a"].est_total_bytes == pytest.approx(2000.0)
        assert by_name["a"].fraction_done == pytest.approx(0.25)

    def test_on_finish_fans_out_to_candidates(self):
        specs, tracker = partial_run()
        store = HistoryStore()
        ens = make_estimator(
            ENSEMBLE, specs, tracker, EstimatorContext(history=store)
        )
        tracker.input_rows(0, 0, 600, 600 * 40.0)
        tracker.output_rows(0, 120, 120 * 50.0)
        tracker.finish_all()
        ens.on_finish()
        assert store.observations(signature_of(specs[0])) == 1


class TestDeprecatedShim:
    def test_instantiation_warns(self):
        specs, tracker = partial_run()
        from repro.core.refine import ProgressEstimator

        with pytest.warns(DeprecationWarning, match="make_estimator"):
            ProgressEstimator(specs, tracker)

    def test_bad_mode_raises_before_warning(self):
        specs, tracker = partial_run()
        from repro.core.refine import ProgressEstimator

        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(ValueError):
                ProgressEstimator(specs, tracker, refine_mode="nope")
        assert caught == []  # validation precedes the deprecation warning

    def test_shim_matches_new_paper_path(self):
        specs, tracker = partial_run()
        from repro.core.refine import ProgressEstimator

        with pytest.warns(DeprecationWarning):
            shim = ProgressEstimator(specs, tracker)
        assert shim.snapshot() == PaperEstimator(specs, tracker).snapshot()
        assert shim.name == "paper"

    def test_shim_maps_legacy_modes(self):
        specs, tracker = partial_run()
        from repro.core.refine import ProgressEstimator

        with pytest.warns(DeprecationWarning):
            shim = ProgressEstimator(specs, tracker, refine_mode="optimizer")
        assert shim.name == "tgn"
        assert shim.snapshot() == TotalGetNextEstimator(specs, tracker).snapshot()
