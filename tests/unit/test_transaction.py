"""Unit tests for transactions and monitored rollback."""

import pytest

from repro.database import Database
from repro.errors import ExecutionError
from repro.storage.schema import Column, Schema
from repro.storage.types import FLOAT, INTEGER, string
from repro.txn import Transaction


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "accounts",
        Schema(
            [
                Column("id", INTEGER),
                Column("owner", string(20)),
                Column("balance", FLOAT),
            ]
        ),
        [(i, f"owner{i % 7}", float(100 * i)) for i in range(500)],
    )
    database.analyze()
    return database


def balances(db):
    return [r[2] for r in db.catalog.get_table("accounts").heap.iter_rows()]


def all_rows(db):
    return list(db.catalog.get_table("accounts").heap.iter_rows())


class TestUpdate:
    def test_update_applies(self, db):
        txn = Transaction(db)
        updated = txn.update(
            "accounts",
            {"balance": lambda row: row[2] + 10.0},
            where=lambda row: row[0] < 100,
        )
        txn.commit()
        assert updated == 100
        rows = all_rows(db)
        assert all(r[2] == 100.0 * r[0] + 10.0 for r in rows if r[0] < 100)
        assert all(r[2] == 100.0 * r[0] for r in rows if r[0] >= 100)

    def test_update_writes_undo_records(self, db):
        txn = Transaction(db)
        txn.update("accounts", {"balance": lambda row: row[2] + 1.0})
        assert txn.undo_records == 500

    def test_noop_update_writes_no_undo(self, db):
        txn = Transaction(db)
        updated = txn.update("accounts", {"balance": lambda row: row[2]})
        assert updated == 0
        assert txn.undo_records == 0

    def test_update_charges_time(self, db):
        before = db.clock.now
        txn = Transaction(db)
        txn.update("accounts", {"balance": lambda row: 0.0})
        assert db.clock.now > before

    def test_query_sees_updates(self, db):
        txn = Transaction(db)
        txn.update("accounts", {"balance": lambda row: -1.0},
                   where=lambda row: row[0] == 3)
        txn.commit()
        result = db.execute("select balance from accounts where id = 3")
        assert result.rows == [(-1.0,)]


class TestDelete:
    def test_delete_removes_rows(self, db):
        txn = Transaction(db)
        deleted = txn.delete("accounts", where=lambda row: row[0] % 2 == 0)
        txn.commit()
        assert deleted == 250
        assert db.catalog.get_table("accounts").num_tuples == 250
        assert all(r[0] % 2 == 1 for r in all_rows(db))

    def test_delete_everything(self, db):
        txn = Transaction(db)
        assert txn.delete("accounts") == 500
        txn.commit()
        assert db.execute("select id from accounts").rows == []

    def test_total_bytes_shrink(self, db):
        before = db.catalog.get_table("accounts").heap.total_bytes
        txn = Transaction(db)
        txn.delete("accounts", where=lambda row: row[0] < 250)
        txn.commit()
        assert db.catalog.get_table("accounts").heap.total_bytes < before


class TestRollback:
    def test_rollback_restores_updates(self, db):
        original = all_rows(db)
        txn = Transaction(db)
        txn.update("accounts", {"balance": lambda row: 0.0})
        txn.rollback()
        assert all_rows(db) == original

    def test_rollback_restores_deletes_in_order(self, db):
        original = all_rows(db)
        txn = Transaction(db)
        txn.delete("accounts", where=lambda row: row[0] % 3 == 0)
        txn.rollback()
        assert all_rows(db) == original

    def test_rollback_mixed_operations(self, db):
        original = all_rows(db)
        txn = Transaction(db)
        txn.update("accounts", {"balance": lambda row: row[2] * 2},
                   where=lambda row: row[0] < 50)
        txn.delete("accounts", where=lambda row: row[0] >= 450)
        txn.update("accounts", {"owner": lambda row: "nobody"},
                   where=lambda row: row[0] == 10)
        txn.rollback()
        assert all_rows(db) == original

    def test_rollback_monitor_progress(self, db):
        txn = Transaction(db)
        txn.update("accounts", {"balance": lambda row: 0.0})
        total = txn.undo_records
        samples = []
        monitor = txn.rollback(
            on_record=lambda m: samples.append(m.remaining_records)
        )
        assert monitor.total_records == total
        assert monitor.remaining_records == 0
        assert monitor.fraction_done == 1.0
        assert samples[0] == total - 1
        assert samples[-1] == 0

    def test_rollback_monitor_estimates_time(self, db):
        txn = Transaction(db)
        txn.update("accounts", {"balance": lambda row: 0.0})
        estimates = []

        def observe(monitor):
            est = monitor.est_remaining_seconds()
            if est is not None:
                estimates.append((monitor.remaining_records, est))

        txn.rollback(on_record=observe)
        assert estimates
        # Estimates shrink as the rollback proceeds.
        assert estimates[-1][1] < estimates[0][1]

    def test_rollback_takes_simulated_time(self, db):
        txn = Transaction(db)
        txn.delete("accounts")
        before = db.clock.now
        txn.rollback()
        assert db.clock.now > before


class TestLifecycle:
    def test_commit_then_dml_rejected(self, db):
        txn = Transaction(db)
        txn.commit()
        with pytest.raises(ExecutionError):
            txn.update("accounts", {"balance": lambda row: 0.0})

    def test_rollback_twice_rejected(self, db):
        txn = Transaction(db)
        txn.rollback()
        with pytest.raises(ExecutionError):
            txn.rollback()

    def test_dml_invalidates_indexes_and_stats(self, db):
        db.create_index("accounts", "id")
        txn = Transaction(db)
        txn.delete("accounts", where=lambda row: row[0] == 1)
        txn.commit()
        table = db.catalog.get_table("accounts")
        assert table.indexes == {}
        assert table.statistics is None

    def test_queries_still_run_after_dml(self, db):
        txn = Transaction(db)
        txn.delete("accounts", where=lambda row: row[0] < 10)
        txn.commit()
        db.analyze("accounts")
        result = db.execute("select count(*) from accounts")
        assert result.rows == [(490,)]
