"""Unit tests for plan search and plan shapes."""

import pytest

from repro.config import SystemConfig
from repro.database import Database
from repro.errors import PlanError
from repro.planner.physical import (
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    MergeJoinNode,
    NestLoopNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
)
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string
from repro.workloads import queries, tpcr


def find_nodes(root, node_type):
    out = []

    def walk(node):
        if isinstance(node, node_type):
            out.append(node)
        for child in node.children:
            walk(child)

    walk(root)
    return out


class TestSingleTablePlans:
    def test_scan_project_shape(self, small_db):
        plan = small_db.prepare("select a, b from t1")
        assert isinstance(plan.root, ProjectNode)
        assert isinstance(plan.root.child, SeqScanNode)

    def test_filters_pushed_to_scan(self, small_db):
        plan = small_db.prepare("select a from t1 where b = 3 and a < 10")
        scan = find_nodes(plan.root, SeqScanNode)[0]
        assert len(scan.filters) == 2

    def test_column_pruning(self, small_db):
        plan = small_db.prepare("select a from t1")
        scan = find_nodes(plan.root, SeqScanNode)[0]
        assert [c.name for c in scan.columns] == ["a"]

    def test_select_star_keeps_all_columns(self, small_db):
        plan = small_db.prepare("select * from t1")
        scan = find_nodes(plan.root, SeqScanNode)[0]
        assert len(scan.columns) == 3

    def test_estimates_annotated(self, small_db):
        plan = small_db.prepare("select a from t1 where b = 3")
        scan = find_nodes(plan.root, SeqScanNode)[0]
        assert scan.est_base_rows == 100
        assert scan.est_rows == pytest.approx(10.0)

    def test_limit_on_top(self, small_db):
        plan = small_db.prepare("select a from t1 limit 5")
        assert isinstance(plan.root, LimitNode)
        assert plan.root.limit == 5

    def test_order_by_adds_sort(self, small_db):
        plan = small_db.prepare("select a from t1 order by b desc")
        sorts = find_nodes(plan.root, SortNode)
        assert len(sorts) == 1
        assert sorts[0].keys[0][1] is False  # descending


class TestIndexSelection:
    @pytest.fixture
    def indexed_db(self):
        """A table large enough that a selective index probe beats a scan."""
        db = Database()
        db.create_table(
            "big",
            Schema([Column("k", INTEGER), Column("pad", string(60))]),
            [(i, "x" * 50) for i in range(20_000)],
        )
        db.analyze()
        db.create_index("big", "k")
        return db

    def test_selective_equality_uses_index(self, indexed_db):
        plan = indexed_db.prepare("select k from big where k = 5")
        assert find_nodes(plan.root, IndexScanNode)

    def test_unselective_scan_stays_sequential(self, indexed_db):
        plan = indexed_db.prepare("select k from big")
        assert not find_nodes(plan.root, IndexScanNode)
        assert find_nodes(plan.root, SeqScanNode)

    def test_index_disabled_by_flag(self, indexed_db):
        indexed_db.config = indexed_db.config.with_planner(enable_indexscan=False)
        plan = indexed_db.prepare("select k from big where k = 5")
        assert not find_nodes(plan.root, IndexScanNode)

    def test_range_bounds_extracted(self, indexed_db):
        plan = indexed_db.prepare("select k from big where k >= 3 and k < 5")
        scans = find_nodes(plan.root, IndexScanNode)
        assert scans
        scan = scans[0]
        assert scan.low == 3 and scan.low_inclusive
        assert scan.high == 5 and not scan.high_inclusive

    def test_index_scan_results_match_seq_scan(self, indexed_db):
        via_index = indexed_db.execute("select k from big where k = 123")
        indexed_db.config = indexed_db.config.with_planner(enable_indexscan=False)
        via_seq = indexed_db.execute("select k from big where k = 123")
        assert via_index.rows == via_seq.rows == [(123,)]


class TestJoinPlans:
    def test_equijoin_uses_hash_join(self, small_db):
        plan = small_db.prepare("select t1.a from t1, t2 where t1.a = t2.a")
        assert find_nodes(plan.root, HashJoinNode)

    def test_hash_join_builds_smaller_side(self, tiny_tpcr):
        plan = tiny_tpcr.prepare(
            "select c.custkey from customer c, orders o where c.custkey = o.custkey"
        )
        join = find_nodes(plan.root, HashJoinNode)[0]
        assert isinstance(join.build, SeqScanNode)
        assert join.build.table.name == "customer"

    def test_non_equi_join_uses_nestloop(self, small_db):
        plan = small_db.prepare("select t1.a from t1, t2 where t1.a <> t2.a")
        assert find_nodes(plan.root, NestLoopNode)
        assert not find_nodes(plan.root, HashJoinNode)

    def test_merge_join_when_forced(self, small_db):
        small_db.config = small_db.config.with_planner(
            enable_hashjoin=False, enable_nestloop=False
        )
        plan = small_db.prepare("select t1.a from t1, t2 where t1.a = t2.a")
        assert find_nodes(plan.root, MergeJoinNode)
        assert len(find_nodes(plan.root, SortNode)) == 2

    def test_nestloop_when_hash_and_merge_disabled(self, small_db):
        small_db.config = small_db.config.with_planner(
            enable_hashjoin=False, enable_mergejoin=False
        )
        plan = small_db.prepare("select t1.a from t1, t2 where t1.a = t2.a")
        assert find_nodes(plan.root, NestLoopNode)

    def test_three_way_join_order(self, tiny_tpcr):
        plan = tiny_tpcr.prepare(queries.Q2)
        joins = find_nodes(plan.root, HashJoinNode)
        assert len(joins) == 2
        # The top join's probe side must be the lineitem scan: the paper's
        # plan (Figure 8) streams lineitem into the second hash join.
        top = joins[0]
        probe_scans = find_nodes(top.probe, SeqScanNode)
        assert any(s.table.name == "lineitem" for s in probe_scans)

    def test_join_output_columns_pruned(self, tiny_tpcr):
        plan = tiny_tpcr.prepare(
            "select c.acctbal from customer c, orders o where c.custkey = o.custkey"
        )
        join = find_nodes(plan.root, HashJoinNode)[0]
        assert [c.name for c in join.columns] == ["acctbal"]

    def test_multi_batch_planned_when_build_exceeds_work_mem(self):
        config = SystemConfig(work_mem_pages=2)
        db = tpcr.build_database(scale=0.002, config=config)
        plan = db.prepare(queries.Q2)
        joins = find_nodes(plan.root, HashJoinNode)
        assert any(j.num_batches > 1 for j in joins)

    def test_default_selectivity_underestimates_lineitem(self, tiny_tpcr):
        plan = tiny_tpcr.prepare(queries.Q2)
        scan = [
            s
            for s in find_nodes(plan.root, SeqScanNode)
            if s.table.name == "lineitem"
        ][0]
        # est = base / 3 while the predicate actually keeps every row.
        assert scan.est_rows == pytest.approx(scan.est_base_rows / 3.0)


class TestPlannerErrors:
    def test_order_by_expression_rejected(self, small_db):
        with pytest.raises(PlanError):
            small_db.prepare("select a from t1 order by a + 1")

    def test_unanalyzed_table_still_plannable(self):
        db = Database()
        db.create_table(
            "raw", Schema([Column("x", INTEGER), Column("s", string(5))]),
            [(i, "a") for i in range(10)],
        )
        plan = db.prepare("select x from raw where x = 3")
        assert isinstance(plan.root, ProjectNode)
