"""Unit tests: leaderboard runs, persistence, and the regression gate."""

from __future__ import annotations

import dataclasses
import io
import json

import pytest

from repro.core.indicator import ProgressIndicator
from repro.estimators import estimator_names
from repro.obs.observatory import (
    LEADERBOARD_SCHEMA,
    SELECTOR_GATED_METRICS,
    Leaderboard,
    LeaderboardCell,
    check_regression,
    check_selector,
    load_leaderboard,
    render_aggregates,
    run_leaderboard,
    write_leaderboard,
)
from repro.obs.observatory.regression import GATED_AGGREGATES
from repro.workloads.grid import Variant, variants_by_name

#: A small, fast slice of the grid exercising scans, blocking operators,
#: and joins — enough for real aggregates in well under a second each.
SMALL_GRID = (
    "xs-uniform-scan-half",
    "xs-uniform-sort-tenth",
    "xs-uniform-join2-unknown",
)


@pytest.fixture(scope="module")
def small_board() -> Leaderboard:
    by_name = variants_by_name()
    return run_leaderboard([by_name[n] for n in SMALL_GRID], "small")


class TestRunLeaderboard:
    def test_every_cell_scores(self, small_board):
        assert [c.name for c in small_board.cells] == list(SMALL_GRID)
        for cell in small_board.cells:
            assert cell.terminal == "finished"
            assert cell.scored
            assert cell.qerror_geomean >= 1.0
            assert cell.row_count > 0
        assert small_board.aggregates["coverage"] == 1.0
        assert small_board.aggregates["cells_total"] == len(SMALL_GRID)

    def test_aggregates_carry_the_gated_metrics(self, small_board):
        for metric in GATED_AGGREGATES:
            assert metric in small_board.aggregates, metric

    def test_runs_are_deterministic(self, small_board):
        by_name = variants_by_name()
        again = run_leaderboard([by_name[n] for n in SMALL_GRID], "small")
        first, second = io.StringIO(), io.StringIO()
        write_leaderboard(small_board, first)
        write_leaderboard(again, second)
        assert first.getvalue() == second.getvalue()

    def test_failing_cell_counts_against_coverage(self):
        by_name = variants_by_name()
        good = by_name["xs-uniform-scan-half"]
        bad = dataclasses.replace(
            good,
            name="xs-uniform-scan-broken",
            sql="select * from no_such_table",
        )
        board = run_leaderboard([good, bad], "small")
        assert board.aggregates["cells_total"] == 2.0
        assert board.aggregates["cells_scored"] == 1.0
        assert board.aggregates["coverage"] == 0.5
        broken = board.cell("xs-uniform-scan-broken")
        assert broken is not None and not broken.scored


class TestPersistence:
    def test_round_trip(self, small_board):
        buf = io.StringIO()
        doc = write_leaderboard(small_board, buf)
        assert doc["schema"] == LEADERBOARD_SCHEMA
        loaded = load_leaderboard(io.StringIO(buf.getvalue()))
        assert loaded == small_board

    def test_file_round_trip(self, small_board, tmp_path):
        path = tmp_path / "board.json"
        write_leaderboard(small_board, path)
        assert load_leaderboard(path) == small_board

    def test_schema_version_is_validated(self, small_board):
        buf = io.StringIO()
        doc = write_leaderboard(small_board, buf)
        doc["schema"] = "repro.leaderboard/999"
        with pytest.raises(ValueError, match="unsupported leaderboard schema"):
            load_leaderboard(io.StringIO(json.dumps(doc)))

    def test_unknown_cell_keys_are_ignored(self, small_board):
        buf = io.StringIO()
        doc = write_leaderboard(small_board, buf)
        doc["cells"][0]["novel_future_field"] = 42
        loaded = load_leaderboard(io.StringIO(json.dumps(doc)))
        assert loaded == small_board

    def test_render_aggregates(self, small_board):
        text = render_aggregates(small_board)
        assert "qerror_geomean" in text and "coverage" in text


def _mutated(board: Leaderboard, **aggregates) -> Leaderboard:
    return Leaderboard(
        schema=board.schema,
        grid=board.grid,
        cells=board.cells,
        aggregates=board.aggregates | aggregates,
    )


class TestRegressionGate:
    def test_identical_boards_pass(self, small_board):
        report = check_regression(small_board, small_board)
        assert report.ok
        assert "gate: PASS" in report.render()

    def test_improvement_passes(self, small_board):
        better = _mutated(
            small_board,
            qerror_geomean=1.0,
            progress_err_mean=0.0,
        )
        assert check_regression(small_board, better).ok

    def test_worsened_qerror_fails(self, small_board):
        worse = _mutated(
            small_board,
            qerror_geomean=small_board.aggregates["qerror_geomean"] * 1.5,
        )
        report = check_regression(small_board, worse)
        assert not report.ok
        assert "gate: FAIL" in report.render()
        bad = [c for c in report.checks if not c.ok]
        assert [c.metric for c in bad] == ["qerror_geomean"]

    def test_monotonicity_gates_absolutely(self, small_board):
        assert small_board.aggregates["monotonicity_violations"] == 0.0
        # Even a single new violation fails, regardless of tolerance.
        worse = _mutated(small_board, monotonicity_violations=1.0)
        assert not check_regression(small_board, worse, tolerance=10.0).ok

    def test_coverage_drop_fails(self, small_board):
        worse = _mutated(small_board, coverage=0.5)
        report = check_regression(small_board, worse)
        assert not report.ok

    def test_missing_cell_fails(self, small_board):
        shrunk = Leaderboard(
            schema=small_board.schema,
            grid=small_board.grid,
            cells=small_board.cells[:-1],
            aggregates=small_board.aggregates,
        )
        report = check_regression(small_board, shrunk)
        assert not report.ok
        assert report.missing_cells == (SMALL_GRID[-1],)

    def test_missing_aggregate_fails(self, small_board):
        aggregates = dict(small_board.aggregates)
        del aggregates["qerror_p95"]
        shrunk = Leaderboard(
            schema=small_board.schema,
            grid=small_board.grid,
            cells=small_board.cells,
            aggregates=aggregates,
        )
        report = check_regression(small_board, shrunk)
        assert not report.ok
        assert report.missing_aggregates == ("qerror_p95",)

    def test_aggregate_absent_from_baseline_is_skipped(self, small_board):
        aggregates = dict(small_board.aggregates)
        del aggregates["tt10_mean"]
        old_baseline = Leaderboard(
            schema=small_board.schema,
            grid=small_board.grid,
            cells=small_board.cells,
            aggregates=aggregates,
        )
        report = check_regression(old_baseline, small_board)
        assert report.ok
        assert "tt10_mean" not in {c.metric for c in report.checks}

    def test_negative_tolerance_rejected(self, small_board):
        with pytest.raises(ValueError, match="non-negative"):
            check_regression(small_board, small_board, tolerance=-0.1)


class TestSabotage:
    """The gate demonstrably fails on an injected accuracy regression."""

    def test_skewed_estimates_fail_the_gate(self, small_board, monkeypatch):
        original = ProgressIndicator._build_report

        def sabotaged(self, t, snapshot, finished):
            report = original(self, t, snapshot, finished)
            if report.est_remaining_seconds is None:
                return report
            # A quietly-introduced 4x overestimate: exactly the class of
            # estimator bug the observatory exists to catch.
            return dataclasses.replace(
                report,
                est_remaining_seconds=report.est_remaining_seconds * 4.0,
            )

        monkeypatch.setattr(ProgressIndicator, "_build_report", sabotaged)
        by_name = variants_by_name()
        skewed = run_leaderboard([by_name[n] for n in SMALL_GRID], "small")

        assert skewed.aggregates["qerror_geomean"] > (
            small_board.aggregates["qerror_geomean"] * 1.2
        )
        report = check_regression(small_board, skewed)
        assert not report.ok
        regressed = {c.metric for c in report.checks if not c.ok}
        assert "qerror_geomean" in regressed


class TestEstimatorColumns:
    def test_selector_run_records_every_candidate(self, small_board):
        assert small_board.estimator == "ensemble"
        assert set(small_board.estimators) == set(
            estimator_names(include_ensemble=False)
        )
        for aggs in small_board.estimators.values():
            assert aggs["coverage"] == 1.0

    def test_non_ensemble_run_has_no_columns(self):
        by_name = variants_by_name()
        board = run_leaderboard(
            [by_name[SMALL_GRID[0]]], "small", estimator="paper"
        )
        assert board.estimator == "paper"
        assert board.estimators == {}

    def test_render_shows_the_selector_row_and_columns(self, small_board):
        text = render_aggregates(small_board)
        assert "[ensemble]" in text
        assert "qerr_gm" in text
        for name in small_board.estimators:
            assert name in text


class TestSelectorGate:
    def test_selector_never_loses_to_paper(self, small_board):
        report = check_selector(small_board)
        assert not report.skipped
        assert report.ok
        assert {c.metric for c in report.checks} == set(SELECTOR_GATED_METRICS)
        assert "selector gate: PASS" in report.render()

    def test_losing_selector_fails(self, small_board):
        paper = small_board.estimators["paper"]
        worse = dataclasses.replace(
            small_board,
            aggregates=small_board.aggregates
            | {"qerror_geomean": paper["qerror_geomean"] * 1.5},
        )
        report = check_selector(worse)
        assert not report.ok
        assert "LOSES TO PAPER" in report.render()
        assert "selector gate: FAIL" in report.render()

    def test_run_without_candidates_is_vacuously_ok(self, small_board):
        bare = dataclasses.replace(small_board, estimators={})
        report = check_selector(bare)
        assert report.skipped
        assert report.ok
        assert "skipped" in report.render()


class TestCellHelpers:
    def test_cell_lookup(self, small_board):
        assert small_board.cell(SMALL_GRID[0]).name == SMALL_GRID[0]
        assert small_board.cell("nope") is None

    def test_cell_axes_match_variant(self, small_board):
        by_name = variants_by_name()
        for cell in small_board.cells:
            v: Variant = by_name[cell.name]
            assert isinstance(cell, LeaderboardCell)
            assert (cell.scale, cell.skew, cell.shape, cell.selectivity) == (
                v.scale_key, v.skew, v.shape, v.selectivity_key
            )
