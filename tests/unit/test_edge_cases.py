"""Edge-case coverage across the whole stack."""

import pytest

from repro.config import SystemConfig
from repro.database import Database
from repro.errors import CatalogError
from repro.storage.schema import Column, Schema
from repro.storage.types import FLOAT, INTEGER, string
from repro.workloads import queries


def db_with(name, schema, rows, config=None):
    db = Database(config=config)
    db.create_table(name, schema, rows)
    db.analyze()
    return db


INT_T = Schema([Column("x", INTEGER)])


class TestEmptyAndTinyTables:
    def test_scan_empty_table(self):
        db = db_with("t", INT_T, [])
        assert db.execute("select x from t").rows == []

    def test_join_with_empty_side(self):
        db = Database()
        db.create_table("a", INT_T, [])
        db.create_table("b", Schema([Column("x", INTEGER), Column("y", INTEGER)]),
                        [(1, 2)])
        db.analyze()
        assert db.execute("select a.x from a, b where a.x = b.x").rows == []

    def test_monitored_empty_query_completes(self):
        db = db_with("t", INT_T, [])
        monitored = db.execute_with_progress("select x from t")
        assert monitored.log.final().finished
        assert monitored.log.final().percent_done == pytest.approx(100.0)

    def test_single_row_table(self):
        db = db_with("t", INT_T, [(7,)])
        assert db.execute("select x from t where x = 7").rows == [(7,)]

    def test_sort_empty_input(self):
        db = db_with("t", INT_T, [])
        assert db.execute("select x from t order by x").rows == []

    def test_order_by_with_ties_stable_cardinality(self):
        db = db_with("t", INT_T, [(1,)] * 10)
        assert len(db.execute("select x from t order by x").rows) == 10


class TestLimits:
    def test_limit_zero(self):
        db = db_with("t", INT_T, [(i,) for i in range(10)])
        assert db.execute("select x from t limit 0").rows == []

    def test_limit_larger_than_result(self):
        db = db_with("t", INT_T, [(i,) for i in range(3)])
        assert len(db.execute("select x from t limit 100").rows) == 3

    def test_limit_stops_execution_early(self):
        # A limited scan must not pay for the whole table.
        rows = [(i, "x" * 40) for i in range(20_000)]
        schema = Schema([Column("x", INTEGER), Column("pad", string(50))])
        full_db = db_with("t", schema, rows)
        full_db.execute("select x from t", keep_rows=False)
        full_time = full_db.clock.now
        lim_db = db_with("t", schema, rows)
        lim_db.execute("select x from t limit 5")
        assert lim_db.clock.now < 0.2 * full_time


class TestThreeWayAndSelfJoins:
    def test_cross_join_no_predicates(self):
        db = Database()
        db.create_table("a", INT_T, [(1,), (2,)])
        db.create_table("b", Schema([Column("y", INTEGER)]), [(10,), (20,), (30,)])
        db.analyze()
        result = db.execute("select x, y from a, b")
        assert len(result.rows) == 6

    def test_self_join_aliases(self):
        db = db_with("t", INT_T, [(1,), (2,), (3,)])
        result = db.execute(
            "select a.x, b.x from t a, t b where a.x < b.x"
        )
        assert sorted(result.rows) == [(1, 2), (1, 3), (2, 3)]

    def test_four_way_join(self):
        db = Database()
        for name in ("a", "b", "c", "d"):
            db.create_table(
                name,
                Schema([Column(f"k{name}", INTEGER), Column(f"v{name}", INTEGER)]),
                [(i, i * 10) for i in range(20)],
            )
        db.analyze()
        result = db.execute(
            "select a.va from a, b, c, d "
            "where a.ka = b.kb and b.kb = c.kc and c.kc = d.kd"
        )
        assert len(result.rows) == 20


class TestDuplicatesAndNulls:
    def test_duplicate_rows_preserved(self):
        db = db_with("t", INT_T, [(5,)] * 4)
        assert len(db.execute("select x from t where x = 5").rows) == 4

    def test_all_null_join_column(self):
        db = Database()
        db.create_table("a", INT_T, [(None,)] * 5)
        db.create_table("b", Schema([Column("y", INTEGER)]), [(None,)] * 5)
        db.analyze()
        assert db.execute("select x from a, b where a.x = b.y").rows == []

    def test_null_in_projection(self):
        db = db_with("t", INT_T, [(None,), (1,)])
        rows = db.execute("select x from t").rows
        assert (None,) in rows

    def test_arithmetic_on_null_projects_null(self):
        db = db_with("t", INT_T, [(None,)])
        assert db.execute("select x + 1 from t").rows == [(None,)]


class TestCatalogEdges:
    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", INT_T, [])
        with pytest.raises(CatalogError):
            db.create_table("t", INT_T, [])

    def test_table_names_case_insensitive(self):
        db = Database()
        db.create_table("MyTable", INT_T, [(1,)])
        assert db.execute("select x from mytable").rows == [(1,)]

    def test_drop_table(self):
        db = Database()
        db.create_table("t", INT_T, [(1,)])
        db.catalog.drop_table("t")
        assert not db.catalog.has_table("t")

    def test_duplicate_index_rejected(self):
        db = db_with("t", INT_T, [(1,)])
        db.create_index("t", "x")
        with pytest.raises(CatalogError):
            db.create_index("t", "x")

    def test_index_on_missing_column_rejected(self):
        db = db_with("t", INT_T, [(1,)])
        with pytest.raises(CatalogError):
            db.create_index("t", "nope")


class TestWorkMemExtremes:
    def test_q2_shape_stable_across_work_mem(self, tpcr_queries):
        """The join result must not depend on the memory budget."""
        from repro.workloads import tpcr

        results = []
        for pages in (1, 8, 512):
            db = tpcr.build_database(
                scale=0.001, subset_rows=20,
                config=SystemConfig(work_mem_pages=pages),
            )
            results.append(db.execute(tpcr_queries["Q2"], keep_rows=False).row_count)
        assert results[0] == results[1] == results[2]

    def test_tiny_work_mem_still_monitorable(self, tpcr_queries):
        from repro.workloads import tpcr

        db = tpcr.build_database(
            scale=0.001, subset_rows=20, config=SystemConfig(work_mem_pages=1)
        )
        monitored = db.execute_with_progress(tpcr_queries["Q2"])
        assert monitored.log.final().percent_done == pytest.approx(100.0)


class TestFloatLiteralsAndExpressions:
    def test_float_comparison(self):
        db = db_with(
            "t", Schema([Column("v", FLOAT)]), [(0.5,), (1.5,), (2.5,)]
        )
        assert len(db.execute("select v from t where v > 1.0").rows) == 2

    def test_projection_expression(self):
        db = db_with("t", INT_T, [(3,)])
        assert db.execute("select x * 2 + 1 from t").rows == [(7,)]

    def test_string_equality_filter(self):
        db = db_with(
            "t", Schema([Column("s", string(5))]), [("ab",), ("cd",)]
        )
        assert db.execute("select s from t where s = 'cd'").rows == [("cd",)]

    def test_negative_literal_filter(self):
        db = db_with("t", INT_T, [(-5,), (5,)])
        assert db.execute("select x from t where x < -1").rows == [(-5,)]
