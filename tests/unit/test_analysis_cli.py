"""Unit tests: the ``repro-analyze`` / ``python -m repro.analysis`` CLI.

Covers both subcommands and their exit codes, and the console-script
entry point registered in ``pyproject.toml``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def fixture_tree(tmp_path):
    """A lintable tree containing one violation of every rule."""
    core = tmp_path / "core"
    core.mkdir()
    (core / "clock.py").write_text("import time\nt = time.time()\n")
    (core / "eq.py").write_text("done = progress == 1.0\n")
    (core / "defaults.py").write_text("def f(a=[]):\n    return a\n")
    storage = tmp_path / "storage"
    storage.mkdir()
    (storage / "layering.py").write_text("import repro.core.segments\n")
    return tmp_path


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "no problems found" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, fixture_tree, capsys):
        assert main(["lint", str(fixture_tree)]) == 1
        out = capsys.readouterr().out
        for rule in ("REPRO001", "REPRO002", "REPRO003", "REPRO004"):
            assert rule in out

    def test_rule_filter(self, fixture_tree, capsys):
        assert main(["lint", "--rule", "REPRO004", str(fixture_tree)]) == 1
        out = capsys.readouterr().out
        assert "REPRO004" in out
        assert "REPRO001" not in out

    def test_unknown_rule_exits_two(self, fixture_tree, capsys):
        assert main(["lint", "--rule", "REPRO999", str(fixture_tree)]) == 2

    def test_shipped_tree_exits_zero(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0


class TestVerifyCommand:
    def test_all_paper_queries_verify(self, capsys):
        assert main(["verify", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        for name in ("Q1", "Q2", "Q3", "Q4", "Q5"):
            assert f"{name}: OK" in out

    def test_single_query(self, capsys):
        assert main(["verify", "--query", "Q1", "--scale", "0.002"]) == 0
        assert "Q1: OK" in capsys.readouterr().out

    def test_small_work_mem_forces_figure3_plans(self, capsys):
        assert main(
            ["verify", "--scale", "0.002", "--work-mem", "1"]
        ) == 0

    def test_ad_hoc_sql(self, capsys):
        assert main(
            ["verify", "--sql", "select count(*) from customer",
             "--scale", "0.002"]
        ) == 0
        assert "sql: OK" in capsys.readouterr().out

    def test_unknown_query_exits_two(self, capsys):
        assert main(["verify", "--query", "Q9"]) == 2


class TestEntryPoints:
    def test_console_script_registered(self):
        """pyproject.toml maps repro-analyze to this main()."""
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert 'repro-analyze = "repro.analysis.cli:main"' in text

    def test_module_invocation(self, fixture_tree):
        """python -m repro.analysis works end to end."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "lint", str(fixture_tree)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "REPRO001" in proc.stdout
