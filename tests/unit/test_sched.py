"""Unit tests for the cooperative multi-query scheduler (repro.sched)."""

from __future__ import annotations

import pytest

from repro.errors import ProgressError
from repro.sched import (
    CANCELLED,
    CooperativeScheduler,
    FINISHED,
    PriorityPolicy,
    RoundRobinPolicy,
    SUSPENDED,
    make_policy,
)
from repro.workloads import queries, tpcr


def _db():
    return tpcr.build_database(scale=0.002, subset_rows=60)


# ----------------------------------------------------------------------
# policies


class TestPolicies:
    def test_make_policy_round_robin(self):
        assert isinstance(make_policy("round_robin"), RoundRobinPolicy)

    def test_make_policy_priority(self):
        assert isinstance(make_policy("priority"), PriorityPolicy)

    def test_make_policy_unknown_raises(self):
        with pytest.raises(ProgressError, match="unknown scheduling policy"):
            make_policy("fifo")

    def test_round_robin_rotates_fairly(self):
        sched = CooperativeScheduler(_db(), policy="round_robin")
        sched.submit(queries.Q1, name="a", keep_rows=False)
        sched.submit(queries.Q1, name="b", keep_rows=False)
        sched.submit(queries.Q1, name="c", keep_rows=False)
        order = [sched.step().name for _ in range(6)]
        assert order == ["a", "b", "c", "a", "b", "c"]

    def test_priority_runs_higher_class_first(self):
        sched = CooperativeScheduler(_db(), policy="priority")
        sched.submit(queries.Q1, name="low", keep_rows=False, priority=0)
        sched.submit(queries.Q1, name="high", keep_rows=False, priority=5)
        # The high-priority task monopolizes slices until it finishes.
        task = sched.step()
        assert task.name == "high"
        while sched.tasks["high"].state != FINISHED:
            assert sched.step().name == "high"
        assert sched.step().name == "low"


# ----------------------------------------------------------------------
# scheduling mechanics


class TestScheduling:
    def test_quantum_must_be_positive(self):
        with pytest.raises(ProgressError, match="quantum_pages"):
            CooperativeScheduler(_db(), quantum_pages=0)

    def test_duplicate_name_rejected(self):
        sched = CooperativeScheduler(_db())
        sched.submit(queries.Q1, name="q", keep_rows=False)
        with pytest.raises(ProgressError, match="already submitted"):
            sched.submit(queries.Q1, name="q", keep_rows=False)

    def test_auto_names_follow_submission_order(self):
        sched = CooperativeScheduler(_db())
        t1 = sched.submit(queries.Q1, keep_rows=False)
        t2 = sched.submit(queries.Q2, keep_rows=False)
        assert (t1.name, t2.name) == ("q1", "q2")

    def test_all_tasks_finish_and_interleave(self):
        sched = CooperativeScheduler(_db())
        sched.submit(queries.Q1, name="a", keep_rows=False)
        sched.submit(queries.Q2, name="b", keep_rows=False)
        tasks = sched.run()
        assert all(t.state == FINISHED for t in tasks)
        # Interleaving: neither task ran in one uninterrupted block.
        order = [s.task for s in sched.slices]
        first_b = order.index("b")
        assert "a" in order[first_b:]

    def test_slices_are_bounded_by_the_quantum(self):
        sched = CooperativeScheduler(_db(), quantum_pages=2)
        task = sched.submit(queries.Q1, name="a", keep_rows=False)
        sched.run()
        # Every suspended slice stopped within a page of the budget.
        for record in task.slices:
            if record.reason == "quantum":
                assert record.pages <= sched.quantum_pages + 1

    def test_unmonitored_task_runs_on_pulse_fallback(self):
        sched = CooperativeScheduler(_db())
        task = sched.submit(queries.Q1, name="a", monitor=False)
        sched.run()
        assert task.state == FINISHED
        assert task.log is None
        assert task.progress() is None
        assert task.result.row_count == task.row_count

    def test_run_until_leaves_others_in_flight(self):
        sched = CooperativeScheduler(_db())
        a = sched.submit(queries.Q1, name="a", keep_rows=False)
        b = sched.submit(queries.Q2, name="b", keep_rows=False)
        sched.run_until(a)
        assert a.state == FINISHED
        assert b.state == SUSPENDED
        assert len(b.slices) > 0

    def test_per_owner_disk_counters(self):
        db = _db()
        db.restart()  # cold pool so the scan really reads
        sched = CooperativeScheduler(db)
        sched.submit(queries.Q1, name="scan", keep_rows=False)
        sched.run()
        io = db.disk.owner_counters("scan")
        assert io["seq_reads"] + io["random_reads"] > 0
        assert db.disk.owner_counters("nobody")["seq_reads"] == 0

    def test_suspend_blocks_and_resume_unblocks(self):
        sched = CooperativeScheduler(_db())
        a = sched.submit(queries.Q1, name="a", keep_rows=False)
        b = sched.submit(queries.Q1, name="b", keep_rows=False)
        sched.suspend("a")
        while b.state != FINISHED:
            assert sched.step().name == "b"
        assert sched.step() is None  # only the blocked task remains
        with pytest.raises(ProgressError, match="nothing runnable"):
            sched.run_until(a)
        sched.resume(a)
        sched.run()
        assert a.state == FINISHED


# ----------------------------------------------------------------------
# determinism


def _interleaving(policy: str):
    sched = CooperativeScheduler(_db(), policy=policy)
    sched.submit(queries.Q1, name="a", keep_rows=False)
    sched.submit(queries.Q2, name="b", keep_rows=False, priority=1)
    sched.submit(queries.Q4, name="c", keep_rows=False)
    tasks = sched.run()
    reports = {
        t.name: [(r.elapsed, r.fraction_done) for r in t.log.reports]
        for t in tasks
    }
    return sched.slices, reports


class TestDeterminism:
    @pytest.mark.parametrize("policy", ["round_robin", "priority"])
    def test_same_policy_replays_identical_interleaving(self, policy):
        slices1, reports1 = _interleaving(policy)
        slices2, reports2 = _interleaving(policy)
        assert slices1 == slices2
        assert reports1 == reports2

    def test_policies_differ(self):
        slices_rr, _ = _interleaving("round_robin")
        slices_pr, _ = _interleaving("priority")
        assert [s.task for s in slices_rr] != [s.task for s in slices_pr]


# ----------------------------------------------------------------------
# cancellation


class TestCancellation:
    def test_cancel_mid_segment_releases_buffer_pins(self):
        db = _db()
        db.restart()
        sched = CooperativeScheduler(db)
        task = sched.submit(queries.Q1, name="scan", keep_rows=False)
        # Run until the scan is suspended mid-page with a pin held.
        while db.buffer_pool.pinned_count == 0:
            assert sched.step() is not None
        assert task.state == SUSPENDED
        sched.cancel(task)
        assert task.state == CANCELLED
        assert db.buffer_pool.pinned_count == 0

    def test_cancel_aborts_the_indicator(self):
        sched = CooperativeScheduler(_db())
        task = sched.submit(queries.Q1, name="a", keep_rows=False, trace=True)
        for _ in range(3):
            sched.step()
        sched.cancel(task)
        final = task.log.final()
        assert final.finished is False
        assert final.fraction_done < 1.0
        assert task.trace_bus.counts().get("query_cancelled") == 1

    def test_cancel_is_idempotent_and_by_name(self):
        sched = CooperativeScheduler(_db())
        task = sched.submit(queries.Q1, name="a", keep_rows=False)
        sched.step()
        sched.cancel("a")
        assert sched.cancel("a").state == CANCELLED
        assert task.finished_at is not None

    def test_cancel_unknown_name_raises(self):
        sched = CooperativeScheduler(_db())
        with pytest.raises(ProgressError, match="unknown task"):
            sched.cancel("ghost")

    def test_cancelled_task_does_not_block_the_rest(self):
        sched = CooperativeScheduler(_db())
        a = sched.submit(queries.Q1, name="a", keep_rows=False)
        b = sched.submit(queries.Q2, name="b", keep_rows=False)
        sched.step()
        sched.cancel(a)
        sched.run()
        assert b.state == FINISHED
        assert b.log.final().fraction_done == pytest.approx(1.0)
