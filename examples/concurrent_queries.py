"""Concurrent queries and DBA load management (paper Section 6, use 1).

Three queries share one database — one virtual clock, one buffer pool —
through a single :class:`Session` and its cooperative scheduler.  Their
indicators observe *each other* as load — no synthetic interference
window needed.  Midway, the DBA consults the indicators, picks the query
with the most remaining work, and blocks it so the short queries finish
sooner; afterwards the victim is resumed and completes.

Run:  python examples/concurrent_queries.py
"""

from repro.config import SystemConfig
from repro.core.loadmgmt import MonitoredQuery, choose_victims, most_remaining_work
from repro.workloads import queries, tpcr


def main() -> None:
    db = tpcr.build_database(scale=0.005, config=SystemConfig(work_mem_pages=24))
    session = db.connect()
    handles = {
        name: session.submit(sql, name=name, keep_rows=False)
        for name, sql in [
            ("scan", queries.Q1),
            ("join", queries.Q2),
            ("nl", queries.Q5),
        ]
    }

    # Let everything interleave for a while (120 scheduler slices).
    for _ in range(120):
        if session.step() is None:
            break

    print(f"t={db.clock.now:7.1f}s  DBA checks the running queries:")
    pool = [
        MonitoredQuery(name, h.progress())
        for name, h in handles.items()
        if not h.done
    ]
    for q in pool:
        remaining = q.report.est_remaining_seconds
        print(
            f"   {q.name:<5} {q.report.percent_done:5.1f}% done, "
            f"~{remaining:7.1f}s left" if remaining is not None else
            f"   {q.name:<5} {q.report.percent_done:5.1f}% done (warming up)"
        )

    victims = choose_victims(pool, 1, policy=most_remaining_work)
    if victims:
        victim = victims[0].name
        print(f"\n   -> blocking {victim!r} (most remaining work)\n")
        session.scheduler.suspend(victim)
    else:
        victim = None

    # Run until every unblocked query completes.
    while session.step() is not None:
        pass

    for name, handle in handles.items():
        if handle.done:
            elapsed = handle.task.result.elapsed
            print(f"t={db.clock.now:7.1f}s  {name} finished in {elapsed:.1f}s")

    if victim is not None:
        print(f"\n   -> resuming {victim!r}")
        session.scheduler.resume(victim)
        session.run()
        elapsed = handles[victim].task.result.elapsed
        print(f"t={db.clock.now:7.1f}s  {victim} finished in {elapsed:.1f}s "
              "(including blocked time)")


if __name__ == "__main__":
    main()
