"""Concurrent queries and DBA load management (paper Section 6, use 1).

Three queries share one database on a single virtual clock.  Their
indicators observe *each other* as load — no synthetic interference
window needed.  Midway, the DBA consults the indicators, picks the query
with the most remaining work, and blocks it so the short queries finish
sooner; afterwards the victim is resumed and completes.

Run:  python examples/concurrent_queries.py
"""

from repro.config import SystemConfig
from repro.core.concurrent import ConcurrentWorkload
from repro.core.loadmgmt import MonitoredQuery, choose_victims, most_remaining_work
from repro.workloads import queries, tpcr


def main() -> None:
    db = tpcr.build_database(scale=0.005, config=SystemConfig(work_mem_pages=24))
    workload = ConcurrentWorkload(db)
    workload.add("scan", queries.Q1)
    workload.add("join", queries.Q2)
    workload.add("nl", queries.Q5)

    # Let everything run for a while (12 slices of 10 virtual seconds).
    for _ in range(12):
        if not workload.step():
            break

    print(f"t={db.clock.now:7.1f}s  DBA checks the running queries:")
    snapshot = workload.reports()
    pool = [MonitoredQuery(name, r) for name, r in snapshot.items()]
    for q in pool:
        remaining = q.report.est_remaining_seconds
        print(
            f"   {q.name:<5} {q.report.percent_done:5.1f}% done, "
            f"~{remaining:7.1f}s left" if remaining is not None else
            f"   {q.name:<5} {q.report.percent_done:5.1f}% done (warming up)"
        )

    victims = choose_victims(pool, 1, policy=most_remaining_work)
    if victims:
        victim = victims[0].name
        print(f"\n   -> blocking {victim!r} (most remaining work)\n")
        workload.suspend(victim)
    else:
        victim = None

    # Run until every unblocked query completes.
    while any(
        not run.done and not run.suspended for run in workload.queries.values()
    ):
        workload.step()

    for name, run in workload.queries.items():
        if run.done:
            print(f"t={db.clock.now:7.1f}s  {name} finished in {run.elapsed:.1f}s")

    if victim is not None:
        print(f"\n   -> resuming {victim!r}")
        workload.resume(victim)
        workload.run()
        run = workload.queries[victim]
        print(f"t={db.clock.now:7.1f}s  {victim} finished in {run.elapsed:.1f}s "
              "(including blocked time)")


if __name__ == "__main__":
    main()
