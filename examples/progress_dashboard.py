"""A console progress display shaped like the paper's Figure 2.

Runs query Q2 under I/O interference (a "file copy" between t=120 s and
t=400 s of virtual time) and redraws the paper's progress-indicator box on
every report.  Unlike a plain per-report callback, the dashboard is a
**TraceBus subscriber**: it draws the box from ``report_emitted`` events
and also narrates the indicator's internal refinements — every §4.3
cardinality-source transition and dominant-input switch prints as an
annotation line, so you can watch the estimate explain itself.  Watch the
time-left estimate jump when the copy starts and collapse when it ends.

Run:  python examples/progress_dashboard.py
"""

from repro.config import SystemConfig
from repro.core.units import format_duration
from repro.obs import TraceBus
from repro.obs.events import (
    CardinalityRefined,
    DominantSwitched,
    ReportEmitted,
    SegmentFinished,
    TraceEvent,
)
from repro.sim.load import LoadProfile
from repro.workloads import queries, tpcr

COPY_START, COPY_END = 120.0, 400.0


def draw_box(report: ReportEmitted) -> None:
    bar_width = 32
    filled = int(round(report.fraction_done * bar_width))
    bar = "#" * filled + "-" * (bar_width - filled)
    left = (
        format_duration(report.est_remaining_seconds)
        if report.est_remaining_seconds is not None
        else "(estimating...)"
    )
    speed = (
        f"{report.speed_pages_per_sec:.0f} U/Sec"
        if report.speed_pages_per_sec is not None
        else "-"
    )
    copying = COPY_START <= report.t < COPY_END
    note = "  << concurrent file copy running >>" if copying else ""
    percent = report.fraction_done * 100.0
    print("  +----------------------------------------------------+")
    print("  |  Progress Indicator              SQL name: Query 2 |")
    print(f"  |  [{bar}] {percent:5.1f}%       |")
    print(f"  |  Elapsed time   {format_duration(report.elapsed):<34} |")
    print(f"  |  Est. time left {left:<34} |")
    print(f"  |  Estimated cost {report.est_cost_pages:10.0f} U{'':<23} |")
    print(f"  |  Execution speed {speed:<33} |")
    print("  +----------------------------------------------------+" + note)


def narrate(event: TraceEvent) -> None:
    """One TraceBus subscriber drives the whole display."""
    if isinstance(event, ReportEmitted) and not event.finished:
        draw_box(event)
    elif isinstance(event, CardinalityRefined):
        print(
            f"  * t={event.t:6.1f}s  segment {event.segment_id} input "
            f"{event.label!r}: estimate source {event.source_from} -> "
            f"{event.source_to} ({event.est_rows_from:.0f} -> "
            f"{event.est_rows_to:.0f} rows)"
        )
    elif isinstance(event, DominantSwitched):
        print(
            f"  * t={event.t:6.1f}s  segment {event.segment_id}: dominant "
            f"input switched {event.from_input} -> {event.to_input}"
        )
    elif isinstance(event, SegmentFinished):
        print(f"  * t={event.t:6.1f}s  segment {event.segment_id} finished")


def main() -> None:
    config = SystemConfig(work_mem_pages=24)
    db = tpcr.build_database(scale=0.01, config=config)
    db.set_load(LoadProfile.file_copy(COPY_START, COPY_END, slowdown=3.0))

    print(
        "Running Q2 with a file copy active between "
        f"t={COPY_START:.0f}s and t={COPY_END:.0f}s (virtual time)\n"
    )
    trace = TraceBus()
    trace.subscribe(narrate)
    handle = db.connect().submit(queries.Q2, name="Q2", trace=trace, keep_rows=False)
    result = handle.result()
    print(
        f"\nDone: {result.row_count} rows in "
        f"{format_duration(handle.log.total_elapsed)} of virtual time; "
        f"{len(trace.events)} trace events recorded."
    )


if __name__ == "__main__":
    main()
