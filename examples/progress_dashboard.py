"""A console progress display shaped like the paper's Figure 2.

Runs query Q2 under I/O interference (a "file copy" between t=120 s and
t=400 s of virtual time) and redraws the paper's progress-indicator box on
every report: elapsed time, estimated time left, percent done, estimated
cost in U, and execution speed in U/s.  Watch the time-left estimate jump
when the copy starts and collapse when it ends.

Run:  python examples/progress_dashboard.py
"""

from repro.config import SystemConfig
from repro.core.report import ProgressReport
from repro.core.units import format_duration
from repro.sim.load import LoadProfile
from repro.workloads import queries, tpcr

COPY_START, COPY_END = 120.0, 400.0


def draw_box(report: ProgressReport) -> None:
    bar_width = 32
    filled = int(round(report.fraction_done * bar_width))
    bar = "#" * filled + "-" * (bar_width - filled)
    left = (
        format_duration(report.est_remaining_seconds)
        if report.est_remaining_seconds is not None
        else "(estimating...)"
    )
    speed = (
        f"{report.speed_pages_per_sec:.0f} U/Sec"
        if report.speed_pages_per_sec is not None
        else "-"
    )
    copying = COPY_START <= report.time < COPY_END
    note = "  << concurrent file copy running >>" if copying else ""
    print("  +----------------------------------------------------+")
    print("  |  Progress Indicator              SQL name: Query 2 |")
    print(f"  |  [{bar}] {report.percent_done:5.1f}%       |")
    print(f"  |  Elapsed time   {format_duration(report.elapsed):<34} |")
    print(f"  |  Est. time left {left:<34} |")
    print(f"  |  Estimated cost {report.est_cost_pages:10.0f} U{'':<23} |")
    print(f"  |  Execution speed {speed:<33} |")
    print("  +----------------------------------------------------+" + note)


def main() -> None:
    config = SystemConfig(work_mem_pages=24)
    db = tpcr.build_database(scale=0.01, config=config)
    db.set_load(LoadProfile.file_copy(COPY_START, COPY_END, slowdown=3.0))

    print(
        "Running Q2 with a file copy active between "
        f"t={COPY_START:.0f}s and t={COPY_END:.0f}s (virtual time)\n"
    )
    monitored = db.execute_with_progress(queries.Q2, on_report=draw_box)
    print(
        f"\nDone: {monitored.result.row_count} rows in "
        f"{format_duration(monitored.log.total_elapsed)} of virtual time."
    )


if __name__ == "__main__":
    main()
