"""Using the engine on your own schema (beyond the paper's TPC-R data).

Builds a small web-analytics-style database from scratch — users,
sessions, page views — with an index, runs ad-hoc SQL through the full
pipeline (parse -> bind -> optimize -> execute), and monitors a heavy
sorted join.  Demonstrates the public API surface a downstream user
touches: ``Database``, ``create_table``/``create_index``/``analyze``,
``prepare`` + ``explain``, and ``connect()`` / ``Session.submit``.

Run:  python examples/custom_workload.py
"""

import random

from repro.config import SystemConfig
from repro.database import Database
from repro.planner.explain import explain
from repro.storage.schema import Column, Schema
from repro.storage.types import FLOAT, INTEGER, string


def build_analytics_db() -> Database:
    rng = random.Random(7)
    db = Database(config=SystemConfig(work_mem_pages=16))

    db.create_table(
        "users",
        Schema(
            [
                Column("user_id", INTEGER),
                Column("country", string(2)),
                Column("plan", string(10)),
            ]
        ),
        [
            (u, rng.choice(["us", "de", "jp", "br"]), rng.choice(["free", "pro"]))
            for u in range(2_000)
        ],
    )
    db.create_table(
        "sessions",
        Schema(
            [
                Column("session_id", INTEGER),
                Column("user_id", INTEGER),
                Column("duration", FLOAT),
            ]
        ),
        [
            (s, rng.randrange(2_000), round(rng.expovariate(1 / 300.0), 1))
            for s in range(20_000)
        ],
    )
    db.create_index("sessions", "user_id")
    db.analyze()
    return db


def main() -> None:
    db = build_analytics_db()
    session = db.connect()

    print("Ad-hoc lookups (index scans):")
    result = session.execute(
        "select s.session_id, s.duration from sessions s where s.user_id = 42"
    )
    print(f"  sessions of user 42: {result.row_count}")

    sql = (
        "select u.user_id, u.country, s.duration "
        "from users u, sessions s "
        "where u.user_id = s.user_id and u.plan = 'pro' "
        "order by s.duration desc limit 10"
    )
    planned = db.prepare(sql)
    print("\nPlan for the top-10 pro-user sessions query:")
    print(explain(planned.root))

    print("\nMonitored execution:")
    handle = session.submit(
        planned,
        name="top-sessions",
        keep_rows=True,
        on_report=lambda r: print("  " + r.format_line()),
    )
    rows = handle.result().rows
    print("\nTop sessions (user, country, seconds):")
    for row in rows:
        print(f"  {row[0]:>6} {row[1]:>3} {row[2]:>10.1f}")
    print(
        f"\nFinished in {handle.log.total_elapsed:.1f} virtual seconds; "
        f"{handle.task.indicator.tracker.done_pages(db.config.page_size):.0f} U "
        "of work performed."
    )


if __name__ == "__main__":
    main()
