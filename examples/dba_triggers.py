"""Automatic administration and load management (paper Section 6).

Two of the paper's proposed uses of progress indicators beyond the UI:

1. **Triggers** — "send an email to the user if after a whole day's
   execution, the query finishes less than 10% of the work."  We install
   a (scaled-down) slow-progress trigger plus a stall alarm on a query
   running under heavy interference.
2. **Load management** — "a progress indicator can help the DBA choose
   which queries to block."  We monitor several queries, collect their
   latest reports, and rank blocking victims under different policies.

Run:  python examples/dba_triggers.py
"""

from repro.config import SystemConfig
from repro.core.loadmgmt import (
    MonitoredQuery,
    choose_victims,
    least_progress,
    longest_remaining,
)
from repro.core.triggers import (
    ProgressTrigger,
    TriggerSet,
    slow_progress_condition,
    stalled_condition,
)
from repro.sim.load import LoadProfile
from repro.workloads import queries, tpcr


def demo_triggers() -> None:
    print("=== 1. DBA triggers on a struggling query ===\n")
    db = tpcr.build_database(scale=0.005, config=SystemConfig(work_mem_pages=24))
    # Heavy interference for the whole run.
    db.set_load(LoadProfile.file_copy(30.0, 10_000.0, slowdown=6.0))

    def email_dba(report):
        print(
            f"  [trigger] t={report.elapsed:.0f}s: query only "
            f"{report.percent_done:.0f}% done — emailing the DBA"
        )

    def page_oncall(report):
        print(
            f"  [trigger] t={report.elapsed:.0f}s: speed collapsed to "
            f"{report.speed_pages_per_sec:.1f} U/s — paging on-call"
        )

    triggers = TriggerSet(
        [
            ProgressTrigger(
                "slow-progress",
                slow_progress_condition(max_fraction=0.5, after_seconds=120.0),
                email_dba,
            ),
            ProgressTrigger(
                "stalled",
                stalled_condition(min_speed_pages=2.0, after_seconds=60.0),
                page_oncall,
            ),
        ]
    )
    handle = db.connect().submit(
        queries.Q2, name="Q2", keep_rows=False, on_report=triggers
    )
    handle.result()
    fired = [t.name for t in triggers.triggers if t.fired]
    print(f"\n  query finished after {handle.log.total_elapsed:.0f}s; "
          f"triggers fired: {fired or 'none'}\n")


def demo_load_management() -> None:
    print("=== 2. Choosing queries to block ===\n")
    pool: list[MonitoredQuery] = []
    for name, sql in [("Q1", queries.Q1), ("Q2", queries.Q2), ("Q5", queries.Q5)]:
        db = tpcr.build_database(scale=0.005, config=SystemConfig(work_mem_pages=24))
        handle = db.connect().submit(sql, name=name, keep_rows=False)
        handle.result()
        # Take each query's report from one third of the way through its
        # life — a snapshot of "currently running" state.
        snapshot = handle.log.at(handle.log.total_elapsed / 3)
        pool.append(MonitoredQuery(name, snapshot))

    print(f"  {'query':<6} {'done %':>8} {'est. remaining (s)':>20}")
    for q in pool:
        remaining = q.report.est_remaining_seconds
        print(
            f"  {q.name:<6} {q.report.percent_done:>8.1f} "
            f"{remaining if remaining is None else round(remaining, 1):>20}"
        )

    by_remaining = choose_victims(pool, 1, policy=longest_remaining)
    by_progress = choose_victims(pool, 1, policy=least_progress, protect={"Q2"})
    print(f"\n  block by longest-remaining     : {by_remaining[0].name}")
    print(f"  block by least-progress (Q2 protected): {by_progress[0].name}")


if __name__ == "__main__":
    demo_triggers()
    demo_load_management()
