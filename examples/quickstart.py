"""Quickstart: monitor one query's progress.

Builds the paper's (scaled) TPC-R data set, runs query Q2 — three-way
join with an optimizer-hostile predicate — with a progress indicator
attached, and prints the report stream plus the annotated plan.

Run:  python examples/quickstart.py
"""

from repro.config import SystemConfig
from repro.core.units import format_duration
from repro.planner.explain import explain
from repro.workloads import queries, tpcr


def main() -> None:
    # A small work_mem makes the second hash join spill, which is the
    # interesting multi-segment case from the paper's Figure 3.
    config = SystemConfig(work_mem_pages=24)
    print("Loading scaled TPC-R data set (scale 0.005)...")
    db = tpcr.build_database(scale=0.005, config=config)

    planned = db.prepare(queries.Q2)
    print("\nAnnotated plan for Q2:")
    print(explain(planned.root))

    print("\nExecuting with a progress indicator (one report / 10 s):\n")
    session = db.connect()
    handle = session.submit(
        planned,
        name="Q2",
        keep_rows=False,
        on_report=lambda r: print("  " + r.format_line()),
    )
    result = handle.result()

    log = handle.log
    final = log.final()
    print("\nQuery finished.")
    print(f"  rows produced      : {result.row_count}")
    print(f"  virtual run time   : {format_duration(log.total_elapsed)}")
    print(f"  exact query cost   : {final.est_cost_pages:.0f} U (pages)")
    print(
        f"  optimizer estimate : {log.initial_cost_pages:.0f} U "
        f"({100 * log.initial_cost_pages / final.est_cost_pages:.0f}% of exact "
        "— the indicator learned the rest at run time)"
    )
    error = log.mean_absolute_remaining_error()
    print(f"  mean |remaining-time error| : {error:.1f} s")


if __name__ == "__main__":
    main()
