"""Monitoring a long rollback (paper Section 2, integrating [15]).

A bulk update touches every orders row, then the transaction aborts.  The
rollback monitor watches the undo-log records being replayed and — with
the same sliding-window speed estimator the query indicator uses —
estimates the remaining rollback time.  Every simulated second we print a
progress line, just like the query progress display.

Run:  python examples/rollback_progress.py
"""

from repro.core.units import format_duration
from repro.txn import Transaction
from repro.workloads import tpcr


def main() -> None:
    db = tpcr.build_database(scale=0.01)
    orders = db.catalog.get_table("orders")
    print(f"orders: {orders.num_tuples} rows")

    txn = Transaction(db)
    updated = txn.update(
        "orders", {"totalprice": lambda row: row[3] * 1.1}
    )
    print(f"bulk update touched {updated} rows "
          f"({txn.undo_records} undo records); aborting...\n")

    printed_at = [db.clock.now]

    def report(monitor) -> None:
        # Print roughly once per simulated second of rollback work.
        if db.clock.now - printed_at[0] < 1.0:
            return
        printed_at[0] = db.clock.now
        est = monitor.est_remaining_seconds()
        est_text = (
            format_duration(est) if est is not None else "(estimating...)"
        )
        print(
            f"  t={db.clock.now:7.2f}s  rolled back "
            f"{monitor.total_records - monitor.remaining_records:>6}/"
            f"{monitor.total_records}  ({100 * monitor.fraction_done:5.1f}%)  "
            f"est. remaining {est_text}"
        )

    start = db.clock.now
    monitor = txn.rollback(on_record=report)
    print(
        f"\nrollback complete in {db.clock.now - start:.2f} simulated seconds; "
        f"{monitor.total_records} records undone."
    )

    # Sanity: the data is back to its original state.
    db.analyze("orders")
    result = db.connect().execute("select sum(totalprice) from orders")
    print(f"sum(totalprice) after rollback: {result.rows[0][0]:.2f}")


if __name__ == "__main__":
    main()
