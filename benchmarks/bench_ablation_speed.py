"""EXP A1 — speed-estimator ablation (paper Section 4.6).

The paper uses a 10-second sliding window and suggests a decaying average
as future work.  Two load scenarios separate the estimators:

* **Persistent shift** — a file copy starts mid-query and never stops
  (like the paper's Figure 20 CPU test).  Adaptive estimators (window,
  decay) must beat the whole-history mean, which keeps averaging in the
  obsolete pre-interference rate.
* **Oscillating load** — interference switches on and off.  Here *no*
  local estimator can predict the future switches; the paper concedes the
  window estimator "will be misleading" in this regime ("there is not
  much that can be done about this").  We report the numbers — the
  whole-history mean can even win — as a faithful reproduction of that
  caveat, and assert only the persistent-shift ordering.
"""

from __future__ import annotations

import math

from common import SCALE, experiment_config, run_once, write_bench_json

from repro.bench import metrics, run_experiment
from repro.sim.load import InterferenceWindow, LoadProfile
from repro.workloads import queries, tpcr

PERSISTENT = LoadProfile.file_copy(80.0, math.inf, slowdown=3.0)
OSCILLATING = LoadProfile(
    [
        InterferenceWindow(80.0, 180.0, io_factor=3.0),
        InterferenceWindow(280.0, 380.0, io_factor=3.0),
    ]
)

ESTIMATORS = ("window", "decay", "global")


def _run_with(speed_estimator: str, load: LoadProfile, tag: str):
    config = experiment_config().with_progress(speed_estimator=speed_estimator)
    db = tpcr.build_database(scale=SCALE, config=config)
    return run_experiment(
        f"Q2-{tag}-{speed_estimator}", db, queries.Q2, load=load
    )


def _all():
    return {
        "persistent": {
            kind: _run_with(kind, PERSISTENT, "persistent") for kind in ESTIMATORS
        },
        "oscillating": {
            kind: _run_with(kind, OSCILLATING, "oscillating") for kind in ESTIMATORS
        },
    }


def test_ablation_speed_estimators(benchmark, record_figure):
    scenarios = run_once(benchmark, _all)

    errors = {
        scenario: {
            kind: metrics.mean_abs_error(
                r.remaining_series(), r.actual_remaining_series()
            )
            for kind, r in results.items()
        }
        for scenario, results in scenarios.items()
    }

    lines = [
        "Ablation A1: speed estimators (Q2; mean |est-actual| remaining, s)",
        f"{'estimator':<12} {'persistent shift':>18} {'oscillating':>14}",
        "-" * 48,
    ]
    for kind in ESTIMATORS:
        lines.append(
            f"{kind:<12} {errors['persistent'][kind]:>18.1f} "
            f"{errors['oscillating'][kind]:>14.1f}"
        )
    lines.append(
        "(oscillating: the paper's Section 4.6 caveat — local estimators "
        "cannot predict load switches)"
    )
    record_figure("ablation_speed", "\n".join(lines))
    write_bench_json(
        "ablation_speed",
        scalars={
            f"{scenario}_{kind}_err_s": errors[scenario][kind]
            for scenario in errors
            for kind in ESTIMATORS
        },
        meta={"scale": SCALE, "query": "Q2", "estimators": list(ESTIMATORS)},
    )

    # Persistent shift: adapting beats averaging forever.
    assert errors["persistent"]["window"] < errors["persistent"]["global"]
    assert errors["persistent"]["decay"] < errors["persistent"]["global"]
