"""EXP A4 — speed-window length sweep (paper Section 4.6).

"this T should not be too small ... [or] too large"; the paper fixes
T = 10 seconds.  This bench sweeps T over {2, 5, 10, 30, 120} on the Q2
I/O-interference run and reports the mean absolute remaining-time error —
showing the sweet spot the paper's choice sits in: very small windows are
noisy, very large windows react slowly to the interference window's start
and end.
"""

from __future__ import annotations

from common import SCALE, experiment_config, run_once, write_bench_json

from repro.bench import metrics, run_experiment
from repro.sim.load import LoadProfile
from repro.workloads import queries, tpcr

WINDOWS = (2.0, 5.0, 10.0, 30.0, 120.0)
LOAD = LoadProfile.file_copy(120.0, 400.0, 3.0)


def _run_with(window: float):
    config = experiment_config().with_progress(speed_window=window)
    db = tpcr.build_database(scale=SCALE, config=config)
    return run_experiment(f"Q2-T{window:g}", db, queries.Q2, load=LOAD)


def _all():
    return {w: _run_with(w) for w in WINDOWS}


def test_ablation_window_length(benchmark, record_figure):
    results = run_once(benchmark, _all)
    errors = {
        w: metrics.mean_abs_error(
            r.remaining_series(), r.actual_remaining_series()
        )
        for w, r in results.items()
    }

    lines = [
        "Ablation A4: sliding-window length T (Q2, I/O interference)",
        "(the paper fixes T = 10 s)",
        f"{'T (s)':>8} {'mean |est-actual| remaining (s)':>34}",
        "-" * 44,
    ]
    for w in WINDOWS:
        lines.append(f"{w:>8.0f} {errors[w]:>34.1f}")
    record_figure("ablation_window", "\n".join(lines))
    write_bench_json(
        "ablation_window",
        scalars={f"t{w:g}_err_s": errors[w] for w in WINDOWS},
        meta={"scale": SCALE, "query": "Q2", "windows_s": list(WINDOWS)},
    )

    # A huge window reacts too slowly to the interference boundaries: the
    # paper's T=10 must beat T=120.
    assert errors[10.0] < errors[120.0]
