"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables/figures: it runs the
experiment once inside pytest-benchmark (so `--benchmark-only` reports the
harness cost), prints the figure series, and writes the rendered text to
``benchmarks/results/<name>.txt`` so the series survive pytest's output
capture.

Alongside the rendered text, every bench persists a machine-readable
JSON document (schema ``repro.bench/2``) to ``benchmarks/results/
<name>.json`` via :func:`write_bench_json`, so figure series and summary
scalars can be diffed, plotted, and trended across PRs without re-parsing
the text tables:

    {"schema": "repro.bench/2", "bench": "<name>",
     "real_time_s": 1.23,                  # wall-clock run time (or null)
     "scalars": {...},                     # flat summary numbers
     "series": {"label": [[t, v], ...]},   # the figure's time series
     "meta": {...}}                        # free-form run parameters

Schema history: ``repro.bench/2`` added the top-level ``real_time_s``
field — the *real* (wall-clock) duration of the experiment function, as
opposed to the virtual-clock durations everything under ``scalars``
reports.  It exists so engine-level real-time work (see
``benchmarks/PERF_SHEET.md``) can be trended from the same documents.
:func:`read_bench_json` still reads ``repro.bench/1`` files, surfacing
``real_time_s`` as None.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from typing import Any, Optional

from repro.config import SystemConfig

BENCH_SCHEMA = "repro.bench/2"

#: Schemas :func:`read_bench_json` accepts; older ones are upgraded
#: in-memory (missing fields filled with None).
_READABLE_SCHEMAS = ("repro.bench/1", "repro.bench/2")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Experiment scale and memory budget shared by all figure benches.  The
#: 24-page work_mem makes Q2's and Q4's second hash joins spill, matching
#: the multi-segment structure of the paper's PostgreSQL runs.
SCALE = 0.01


def experiment_config() -> SystemConfig:
    return SystemConfig(work_mem_pages=24)


#: Wall-clock seconds of the most recent :func:`run_once` call, consumed
#: as the default ``real_time_s`` by :func:`write_bench_json` so every
#: bench records its real duration without threading a timer through.
_last_real_time: Optional[float] = None


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    global _last_real_time
    start = time.perf_counter()
    try:
        return benchmark.pedantic(fn, rounds=1, iterations=1)
    finally:
        _last_real_time = time.perf_counter() - start


def _jsonable(value: Any) -> Any:
    """JSON-safe copy: tuples -> lists, non-finite floats -> None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def write_bench_json(
    name: str,
    *,
    series: Optional[dict[str, Any]] = None,
    scalars: Optional[dict[str, Any]] = None,
    meta: Optional[dict[str, Any]] = None,
    real_time_s: Optional[float] = None,
) -> pathlib.Path:
    """Persist one bench's machine-readable result document.

    ``series`` maps a label to ``[(t, value), ...]`` points (values may be
    None); ``scalars`` holds flat summary numbers; ``meta`` records run
    parameters.  ``real_time_s`` is the wall-clock duration of the
    experiment; when omitted it defaults to the most recent
    :func:`run_once` timing (None if no run happened in this process).
    Non-finite floats serialize as ``null`` so the files stay strict JSON.
    """
    if real_time_s is None:
        real_time_s = _last_real_time
    doc: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "real_time_s": _jsonable(real_time_s),
    }
    if meta:
        doc["meta"] = _jsonable(meta)
    if scalars:
        doc["scalars"] = _jsonable(scalars)
    if series:
        doc["series"] = {
            label: [[_jsonable(t), _jsonable(v)] for t, v in points]
            for label, points in series.items()
        }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    return path


def read_bench_json(path) -> dict[str, Any]:
    """Read a bench result document, upgrading older schemas in-memory.

    Accepts any schema in :data:`_READABLE_SCHEMAS`; documents written
    before ``repro.bench/2`` gain ``real_time_s: None``.  Unknown schemas
    raise ``ValueError`` rather than silently misreading future formats.
    """
    with open(path) as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema not in _READABLE_SCHEMAS:
        raise ValueError(
            f"{path}: unknown bench schema {schema!r} "
            f"(readable: {', '.join(_READABLE_SCHEMAS)})"
        )
    doc.setdefault("real_time_s", None)
    return doc


def experiment_series(result) -> dict[str, Any]:
    """The standard series bundle of one :class:`ExperimentResult`."""
    return {
        "estimated_cost_pages": result.estimated_cost_series(),
        "speed_pages_per_s": result.speed_series(),
        "remaining_s": result.remaining_series(),
        "actual_remaining_s": result.actual_remaining_series(),
        "optimizer_remaining_s": result.optimizer_remaining_series(),
        "completed_percent": result.percent_series(),
    }


def experiment_scalars(result) -> dict[str, Any]:
    """The standard summary scalars of one :class:`ExperimentResult`."""
    return {
        "total_elapsed_s": result.total_elapsed,
        "exact_cost_pages": result.exact_cost_pages,
        "num_segments": result.num_segments,
    }
