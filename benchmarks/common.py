"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables/figures: it runs the
experiment once inside pytest-benchmark (so `--benchmark-only` reports the
harness cost), prints the figure series, and writes the rendered text to
``benchmarks/results/<name>.txt`` so the series survive pytest's output
capture.
"""

from __future__ import annotations

from repro.config import SystemConfig

#: Experiment scale and memory budget shared by all figure benches.  The
#: 24-page work_mem makes Q2's and Q4's second hash joins spill, matching
#: the multi-segment structure of the paper's PostgreSQL runs.
SCALE = 0.01


def experiment_config() -> SystemConfig:
    return SystemConfig(work_mem_pages=24)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
