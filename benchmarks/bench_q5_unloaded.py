"""EXP F19 — Figure 19: Q5 (CPU-bound nested loops) unloaded (Section 5.6.1).

Q5 cross-compares the two 3K-row customer subsets with ``custkey <>
custkey`` — a nested-loops plan whose cost is almost entirely CPU.  The
paper's point: even for a CPU-bound query, measuring progress in bytes
consumed works, because the indicator is "really measuring progress
through the dominant input" (the outer relation).  The remaining-time
estimate should coincide with the actual line.
"""

from __future__ import annotations

from common import (
    SCALE,
    experiment_config,
    experiment_scalars,
    experiment_series,
    run_once,
    write_bench_json,
)

from repro.bench import render_table, run_experiment
from repro.workloads import queries, tpcr


def _run():
    db = tpcr.build_database(scale=SCALE, config=experiment_config())
    return run_experiment("Q5-unloaded", db, queries.Q5)


def test_fig19_q5_unloaded(benchmark, record_figure):
    result = run_once(benchmark, _run)

    record_figure(
        "fig19_q5_remaining",
        render_table(
            {
                "indicator (s)": result.remaining_series(),
                "actual (s)": result.actual_remaining_series(),
            },
            title="Figure 19: remaining execution time over time (unloaded, Q5)",
        ),
    )

    write_bench_json(
        "q5_unloaded",
        series=experiment_series(result),
        scalars=experiment_scalars(result),
        meta={"query": "Q5", "scale": SCALE, "figures": [19]},
    )

    # One segment, dominant input = the outer relation.
    assert result.num_segments == 1
    # After the first full speed window, the estimate tracks actual.
    act = dict(result.actual_remaining_series())
    checked = 0
    for t, v in result.remaining_series():
        if v is None or t < 20.0:
            continue
        checked += 1
        assert abs(v - act[t]) <= 0.15 * result.total_elapsed + 5.0
    assert checked >= 5
