"""EXP F20 — Figure 20: Q5 under CPU interference (Section 5.6.2).

A CPU-intensive program starts at t=120 and runs until the query finishes
(the paper: execution time grew from 211s to 463s).  The indicator
"notices" the slowdown: its remaining-time estimate jumps at the onset and
then coincides with the actual line within a couple of speed windows.
"""

from __future__ import annotations

from common import (
    SCALE,
    experiment_config,
    experiment_scalars,
    experiment_series,
    run_once,
    write_bench_json,
)

from repro.bench import metrics, render_table, run_experiment
from repro.sim.load import LoadProfile
from repro.workloads import queries, tpcr

HOG_START = 120.0
SLOWDOWN = 2.5


def _run():
    unloaded_db = tpcr.build_database(scale=SCALE, config=experiment_config())
    unloaded = run_experiment("Q5-unloaded", unloaded_db, queries.Q5)
    db = tpcr.build_database(scale=SCALE, config=experiment_config())
    loaded = run_experiment(
        "Q5-cpu",
        db,
        queries.Q5,
        load=LoadProfile.cpu_hog(HOG_START, slowdown=SLOWDOWN),
    )
    return unloaded, loaded


def test_fig20_q5_cpu_interference(benchmark, record_figure):
    unloaded, result = run_once(benchmark, _run)

    record_figure(
        "fig20_q5cpu_remaining",
        render_table(
            {
                "indicator (s)": result.remaining_series(),
                "actual (s)": result.actual_remaining_series(),
            },
            title=(
                "Figure 20: remaining execution time over time "
                f"(CPU interference from t={HOG_START:.0f}s, "
                f"{SLOWDOWN:.1f}x slowdown, Q5)"
            ),
        ),
    )

    write_bench_json(
        "q5_cpu_interference",
        series=experiment_series(result),
        scalars=experiment_scalars(result)
        | {"unloaded_elapsed_s": unloaded.total_elapsed},
        meta={
            "query": "Q5",
            "scale": SCALE,
            "figures": [20],
            "hog_start_s": HOG_START,
            "cpu_slowdown": SLOWDOWN,
        },
    )

    # The hog stretches the query (paper: 211s -> 463s).
    assert result.total_elapsed > 1.3 * unloaded.total_elapsed
    # The estimate jumps up when the hog starts...
    rem = result.remaining_series()
    assert metrics.value_near(rem, HOG_START + 45) > metrics.value_near(
        rem, HOG_START - 5
    )
    # ...and coincides with actual soon after (paper: from 140s on).
    act = dict(result.actual_remaining_series())
    late = [
        (t, v)
        for t, v in rem
        if v is not None and t >= HOG_START + 50
    ]
    assert late
    for t, v in late:
        assert abs(v - act[t]) <= 0.2 * result.total_elapsed
