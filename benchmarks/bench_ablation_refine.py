"""EXP A2 — refinement-formula ablation (paper Section 4.5).

The paper's estimator is ``E = p*E2 + (1-p)*E1``, a heuristic "to smooth
fluctuations in the estimator".  Two workloads expose the trade-off:

* **Uniform output (Q2)** — the lineitem predicate passes every row, so
  outputs arrive proportionally to the dominant input and raw
  extrapolation (``E2 = y/p``) is exact almost immediately.  Here the
  smoothing *costs* accuracy (it keeps blending in the wrong E1), and
  never learning at all ("optimizer") is worst.
* **Skewed output** — all qualifying rows sit at the tail of the scanned
  relation, so ``y = 0`` for most of the scan and raw E2 collapses to 0,
  wildly underestimating the sort above it.  The paper's smoothed formula
  stays anchored near E1 and wins.

This is exactly why the paper blends the two estimates rather than using
either alone.
"""

from __future__ import annotations

from common import SCALE, experiment_config, run_once, write_bench_json

from repro.bench import run_experiment
from repro.database import Database
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string
from repro.workloads import queries, tpcr

MODES = ("paper", "optimizer", "extrapolate")

#: Skewed workload: rows stored in increasing v order; the filter matches
#: only the top ~8%, i.e. nothing until the scan's tail.  The ORDER BY
#: puts a sort (a counted segment output) above the filter, so the output
#: estimate matters to the cost.
SKEW_ROWS = 30_000
SKEW_SQL = f"select v, pad from skew where v >= {int(SKEW_ROWS * 0.92)} order by v"


def _skew_db(mode: str) -> Database:
    config = experiment_config().with_progress(refine_mode=mode)
    db = Database(config=config)
    db.create_table(
        "skew",
        Schema([Column("v", INTEGER), Column("pad", string(60))]),
        ((i, "x" * 48) for i in range(SKEW_ROWS)),
    )
    db.analyze()
    return db


def _run_all():
    uniform = {}
    skewed = {}
    for mode in MODES:
        config = experiment_config().with_progress(refine_mode=mode)
        db = tpcr.build_database(scale=SCALE, config=config)
        uniform[mode] = run_experiment(f"Q2-{mode}", db, queries.Q2)
        skewed[mode] = run_experiment(f"skew-{mode}", _skew_db(mode), SKEW_SQL)
    return uniform, skewed


def _cost_error(result):
    exact = result.exact_cost_pages
    points = [abs(v - exact) for _, v in result.estimated_cost_series()]
    return sum(points) / len(points)


def test_ablation_refinement_formula(benchmark, record_figure):
    uniform, skewed = run_once(benchmark, _run_all)
    uniform_err = {m: _cost_error(r) for m, r in uniform.items()}
    skewed_err = {m: _cost_error(r) for m, r in skewed.items()}

    lines = [
        "Ablation A2: output-cardinality refinement formula",
        "(mean |estimated cost - exact| in U, lower is better)",
        f"{'mode':<14} {'uniform (Q2)':>14} {'skewed tail':>14}",
        "-" * 46,
    ]
    for mode in MODES:
        lines.append(
            f"{mode:<14} {uniform_err[mode]:>14.1f} {skewed_err[mode]:>14.1f}"
        )
    record_figure("ablation_refine", "\n".join(lines))
    write_bench_json(
        "ablation_refine",
        scalars={f"uniform_{m}_err_pages": uniform_err[m] for m in MODES}
        | {f"skewed_{m}_err_pages": skewed_err[m] for m in MODES},
        meta={"scale": SCALE, "modes": list(MODES), "skew_rows": SKEW_ROWS},
    )

    # Learning from observed outputs beats never learning (both loads).
    assert uniform_err["paper"] < uniform_err["optimizer"]
    # Uniform output: raw extrapolation is hard to beat (it is exact).
    assert uniform_err["extrapolate"] <= uniform_err["paper"]
    # Skewed output: the paper's smoothing beats raw extrapolation, which
    # believes "no output so far -> no output ever".
    assert skewed_err["paper"] < skewed_err["extrapolate"]
