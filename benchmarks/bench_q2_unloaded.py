"""EXP F9-F12 — Figures 9-12: query Q2 on an unloaded system (Section 5.3.1).

Q2's plan (paper Figure 8) joins customer x orders x lineitem with the
unestimatable predicate ``absolute(l.partkey) > 0`` on lineitem.  The
default 1/3 selectivity makes the initial cost a too-low constant; the
estimate ramps while the lineitem pipeline runs and reaches the exact cost
before the final join phase, then stays constant (Fig 9).  Speed varies by
stage (Fig 10); the remaining-time estimate converges to actual and is far
better than the optimizer's (Fig 11); percent-done keeps rising (Fig 12).
"""

from __future__ import annotations

from common import (
    SCALE,
    experiment_config,
    experiment_scalars,
    experiment_series,
    run_once,
    write_bench_json,
)

from repro.bench import metrics, render_table, run_experiment
from repro.workloads import queries, tpcr


def _run():
    db = tpcr.build_database(scale=SCALE, config=experiment_config())
    return run_experiment("Q2-unloaded", db, queries.Q2)


def test_fig9_to_12_q2_unloaded(benchmark, record_figure):
    result = run_once(benchmark, _run)
    exact = result.exact_cost_pages

    record_figure(
        "fig09_q2_cost",
        render_table(
            {
                "estimated cost (U)": result.estimated_cost_series(),
                "exact cost (U)": [
                    (t, exact) for t, _ in result.estimated_cost_series()
                ],
            },
            title="Figure 9: query cost estimated over time (unloaded, Q2)",
        ),
    )
    record_figure(
        "fig10_q2_speed",
        render_table(
            {"speed (U/s)": result.speed_series()},
            title="Figure 10: query execution speed over time (unloaded, Q2)",
        ),
    )
    record_figure(
        "fig11_q2_remaining",
        render_table(
            {
                "indicator (s)": result.remaining_series(),
                "actual (s)": result.actual_remaining_series(),
                "optimizer (s)": result.optimizer_remaining_series(),
            },
            title="Figure 11: remaining execution time over time (unloaded, Q2)",
        ),
    )
    record_figure(
        "fig12_q2_percent",
        render_table(
            {"completed %": result.percent_series()},
            title="Figure 12: completed percentage over time (unloaded, Q2)",
        ),
    )

    write_bench_json(
        "q2_unloaded",
        series=experiment_series(result),
        scalars=experiment_scalars(result),
        meta={"query": "Q2", "scale": SCALE, "figures": [9, 10, 11, 12]},
    )

    cost = result.estimated_cost_series()
    # Initial estimate is a too-low constant...
    assert cost[0][1] < 0.85 * exact
    # ...that never decreases and reaches the exact cost before completion.
    assert metrics.is_nondecreasing(cost, slack=1.0)
    converged = metrics.convergence_time(cost, exact, tolerance=0.02)
    assert converged is not None and converged < 0.95 * result.total_elapsed
    # Figure 11: the indicator is much better than the optimizer estimate.
    ind = metrics.mean_abs_error(result.remaining_series(), result.actual_remaining_series())
    opt = metrics.mean_abs_error(
        result.optimizer_remaining_series(), result.actual_remaining_series()
    )
    assert ind < 0.6 * opt
