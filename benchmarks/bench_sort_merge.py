"""EXP A3 — sort-merge join progress (paper Section 4.5, not in their
prototype).

The paper defines but never implements sort-merge support: a segment
containing a sort-merge join has *two* dominant inputs and progresses with
``p = max(qA, qB)``.  This bench forces a merge-join plan for the
customer-orders join, monitors it, and prints the merge segment's
remaining-time series — demonstrating the one piece of Section 4 the
paper's PostgreSQL prototype left out.
"""

from __future__ import annotations

from common import (
    SCALE,
    experiment_config,
    experiment_scalars,
    experiment_series,
    run_once,
    write_bench_json,
)

from repro.bench import metrics, render_table, run_experiment
from repro.workloads import tpcr

SQL = (
    "select c.custkey, c.acctbal, o.orderkey, o.totalprice "
    "from customer c, orders o where c.custkey = o.custkey"
)


def _run():
    config = experiment_config().with_planner(
        enable_hashjoin=False, enable_nestloop=False
    )
    db = tpcr.build_database(scale=SCALE, config=config)
    return run_experiment("merge-join", db, SQL)


def test_sort_merge_join_progress(benchmark, record_figure):
    result = run_once(benchmark, _run)

    record_figure(
        "sort_merge_remaining",
        render_table(
            {
                "indicator (s)": result.remaining_series(),
                "actual (s)": result.actual_remaining_series(),
            },
            title=(
                "Extension A3: remaining time for a forced sort-merge join\n"
                "(two dominant inputs, p = max(qA, qB))"
            ),
        ),
    )

    write_bench_json(
        "sort_merge",
        series=experiment_series(result),
        scalars=experiment_scalars(result),
        meta={"scale": SCALE, "plan": "forced merge join"},
    )

    # Three segments: two run-generation sorts + the merge pipeline.
    assert result.num_segments == 3
    # Percent-done is monotone and completes.
    assert metrics.is_nondecreasing(result.percent_series())
    assert result.percent_series()[-1][1] == 100.0
    # Remaining-time estimates converge to the actual line late in the run.
    act = dict(result.actual_remaining_series())
    late = [
        (t, v)
        for t, v in result.remaining_series()
        if v is not None and t >= 0.7 * result.total_elapsed
    ]
    assert late
    for t, v in late:
        assert abs(v - act[t]) <= 0.2 * result.total_elapsed + 5.0
