"""EXP A9 — data skew vs the proportionality assumption (§4.5).

The paper's extrapolation ``E2 = y/p`` assumes "the number of output
tuples that have been generated is proportional to the percentage that
the dominant input has been processed" — and immediately concedes "in
practice, this assumption may not be valid", which is why E1 is blended
in.  This experiment quantifies the concession.

Workload: a scan with an unestimatable predicate (``mod(v, 10) = 0``,
true for 10% of rows; the optimizer assumes 1/3) feeding a sort, whose
run formation is a counted segment output.  Three physical layouts of the
same rows:

* **uniform** — qualifying rows spread evenly: output is proportional,
  the estimate approaches the exact cost monotonically from below;
* **front-loaded** — qualifying rows stored first: early extrapolation
  sees a 100% pass rate, so the blended estimate *overshoots* the exact
  cost before correcting;
* **back-loaded** — qualifying rows stored last: the indicator sees no
  output for most of the scan and converges later than uniform.
"""

from __future__ import annotations

from common import experiment_config, run_once, write_bench_json

from repro.bench import metrics, run_experiment
from repro.database import Database
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string

ROWS = 30_000
SQL = "select v, pad from skew where mod(v, 10) = 0 order by v"


def _db(layout: str) -> Database:
    values = list(range(ROWS))
    if layout == "front":
        values.sort(key=lambda v: (v % 10 != 0, v))
    elif layout == "back":
        values.sort(key=lambda v: (v % 10 == 0, v))
    db = Database(config=experiment_config())
    db.create_table(
        "skew",
        Schema([Column("v", INTEGER), Column("pad", string(60))]),
        ((v, "x" * 48) for v in values),
    )
    db.analyze()
    return db


def _all():
    return {
        layout: run_experiment(layout, _db(layout), SQL)
        for layout in ("uniform", "front", "back")
    }


def _max_overshoot(result):
    exact = result.exact_cost_pages
    return max(
        max(0.0, v - exact) / exact for _, v in result.estimated_cost_series()
    )


def _max_undershoot(result):
    exact = result.exact_cost_pages
    return max(
        max(0.0, exact - v) / exact for _, v in result.estimated_cost_series()
    )


def test_ablation_skew(benchmark, record_figure):
    results = run_once(benchmark, _all)
    overshoot = {k: _max_overshoot(r) for k, r in results.items()}
    undershoot = {k: _max_undershoot(r) for k, r in results.items()}
    convergence = {
        k: metrics.convergence_time(
            r.estimated_cost_series(), r.exact_cost_pages, 0.05
        )
        for k, r in results.items()
    }

    lines = [
        "Ablation A9: qualifying-row placement vs the proportionality "
        "assumption",
        "(scan with unestimatable 10% predicate feeding a sort; the 1/3 "
        "default over-estimates, so every run starts high)",
        f"{'layout':<10} {'max over':>10} {'max under':>10} "
        f"{'converged (s)':>14} {'run (s)':>9}",
        "-" * 58,
    ]
    for k, r in results.items():
        conv = f"{convergence[k]:.0f}" if convergence[k] is not None else "never"
        lines.append(
            f"{k:<10} {overshoot[k]:>9.1%} {undershoot[k]:>9.1%} "
            f"{conv:>14} {r.total_elapsed:>9.0f}"
        )
    record_figure("ablation_skew", "\n".join(lines))
    write_bench_json(
        "ablation_skew",
        scalars={
            f"{layout}_{field}": value
            for layout in results
            for field, value in (
                ("max_overshoot", overshoot[layout]),
                ("max_undershoot", undershoot[layout]),
                ("convergence_s", convergence[layout]),
                ("elapsed_s", results[layout].total_elapsed),
            )
        },
        meta={"rows": ROWS, "sql": SQL},
    )

    # Front-loaded matches inflate early extrapolation: the estimate
    # overshoots beyond the initial (already too-high) E1 level.
    assert overshoot["front"] > overshoot["uniform"] + 0.02
    # Back-loaded matches starve the extrapolation: E sinks below the
    # exact cost while no output arrives; uniform data never undershoots.
    assert undershoot["back"] > undershoot["uniform"] + 0.02
    # Everyone converges in the end — the E1 blend recovers (5% band).
    assert all(c is not None for c in convergence.values())
