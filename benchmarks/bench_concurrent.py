"""EXP A5 — real concurrency instead of synthetic interference.

The paper models load with an external file copy / CPU hog.  This engine
can also produce contention organically: several queries interleave on
one shared virtual clock, so each query's indicator observes the others
as load.  The bench runs Q1 alone and then Q1 concurrently with Q2, and
shows the same signature as the interference figures: lower observed
speed, stretched run time — and a remaining-time estimate that still
tracks the actual line because the speed monitor sees the contention.
"""

from __future__ import annotations

from common import experiment_config, run_once

from repro.bench import metrics, render_table
from repro.core.concurrent import ConcurrentWorkload
from repro.workloads import queries, tpcr

SCALE = 0.005


def _run():
    solo_db = tpcr.build_database(scale=SCALE, config=experiment_config())
    solo = solo_db.execute_with_progress(queries.Q1)

    db = tpcr.build_database(scale=SCALE, config=experiment_config())
    workload = ConcurrentWorkload(db)
    workload.add("Q1", queries.Q1)
    workload.add("Q2", queries.Q2)
    runs = workload.run()
    return solo, runs


def test_concurrent_contention(benchmark, record_figure):
    solo, runs = run_once(benchmark, _run)
    q1 = runs["Q1"]

    record_figure(
        "concurrent_q1_remaining",
        render_table(
            {
                "indicator (s)": q1.log.remaining_series(),
                "actual (s)": [
                    (t, max(0.0, q1.elapsed - t))
                    for t, _ in q1.log.remaining_series()
                ],
            },
            title=(
                "Extension A5: Q1 remaining time while Q2 runs concurrently\n"
                f"(solo Q1: {solo.result.elapsed:.1f}s; "
                f"concurrent Q1: {q1.elapsed:.1f}s)"
            ),
        ),
    )

    # Contention stretches the scan.
    assert q1.elapsed > 1.3 * solo.result.elapsed
    # Observed speed under contention is lower than solo.
    solo_peak = max(v for _, v in solo.log.speed_series() if v is not None)
    loaded_peak = max(v for _, v in q1.log.speed_series() if v is not None)
    assert loaded_peak < solo_peak
    # The indicator still tracks the actual remaining time reasonably.
    err = metrics.mean_abs_error(
        q1.log.remaining_series(),
        [(t, max(0.0, q1.elapsed - t)) for t, _ in q1.log.remaining_series()],
    )
    assert err < 0.35 * q1.elapsed
