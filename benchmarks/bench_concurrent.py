"""EXP A5 — the cooperative scheduler: overhead and estimator accuracy.

The paper models load with an external file copy / CPU hog.  This engine
produces contention organically: N queries interleave on one shared
virtual clock and buffer pool through :class:`CooperativeScheduler`, so
each query's indicator observes the others as load.  Two measurements:

* **Scheduler overhead** (real host time): the same monitored Q2 run
  driven directly by ``run_query`` vs sliced through the scheduler at
  concurrency 1.  The slice machinery costs one PULSE check per page of
  work; the penalty must stay bounded.
* **Per-query estimator accuracy** at concurrency 1, 4 and 16: every
  query must reach 100%, and the mean |remaining-time error| relative to
  the query's own run time must stay within 2x of the concurrency-1
  baseline — the speed monitor sees the contention, so the estimate
  keeps tracking the actual line even in a busy mix.
"""

from __future__ import annotations

import time

from common import experiment_config, run_once, write_bench_json

from repro.bench import metrics, render_table
from repro.core.indicator import ProgressIndicator
from repro.executor.base import ExecContext
from repro.executor.runtime import run_query
from repro.workloads import queries, tpcr

SCALE = 0.005
LEVELS = (1, 4, 16)
#: Submission rotation: scan-heavy and join-heavy queries mixed.
MIX = ("Q1", "Q2", "Q4")


def _db():
    return tpcr.build_database(scale=SCALE, config=experiment_config())


def _direct_monitored(db, sql):
    """The pre-scheduler monitored path: indicator + run_query, no slicing."""
    planned = db.prepare(sql)
    indicator = ProgressIndicator(planned, db.clock, db.config, label="direct")
    ctx = ExecContext(
        db.clock, db.disk, db.buffer_pool, db.config, tracker=indicator.tracker
    )
    result = run_query(planned, ctx, keep_rows=False)
    return result, indicator.finalize()


def _normalized_error(log, elapsed: float) -> float:
    """Mean |remaining-time error| as a fraction of the query's run time."""
    actual = [(t, max(0.0, elapsed - t)) for t, _ in log.remaining_series()]
    return metrics.mean_abs_error(log.remaining_series(), actual) / elapsed


#: Accuracy-audit floor: a perfectly predictable solo scan has error
#: ~0, which would make "within 2x of baseline" unsatisfiable for any
#: real contention; the floor is the solo error of the join queries.
ACCURACY_FLOOR = 0.125


def _run_level(n: int):
    """Run ``n`` concurrent monitored queries; return (tasks, real seconds)."""
    db = _db()
    session = db.connect()
    for i in range(n):
        session.submit(
            queries.PAPER_QUERIES[MIX[i % len(MIX)]],
            name=f"{MIX[i % len(MIX)].lower()}-{i + 1}",
            keep_rows=False,
        )
    t0 = time.perf_counter()
    handles = session.run()
    return [h.task for h in handles], time.perf_counter() - t0


def _solo_baselines():
    """Each mix query run alone (still scheduled): the accuracy baseline."""
    baselines = {}
    for qname in MIX:
        session = _db().connect()
        handle = session.submit(
            queries.PAPER_QUERIES[qname], name=qname, keep_rows=False
        )
        handle.result()
        baselines[qname] = _normalized_error(
            handle.log, handle.task.result.elapsed
        )
    return baselines


def _run_all():
    per_level = {n: _run_level(n) for n in LEVELS}
    baselines = _solo_baselines()

    # Overhead baseline: the same single monitored query, unsliced.
    direct_times = []
    for _ in range(3):
        db = _db()
        t0 = time.perf_counter()
        _direct_monitored(db, queries.Q1)
        direct_times.append(time.perf_counter() - t0)
    sched_times = []
    for _ in range(3):
        _, real = _run_level(1)
        sched_times.append(real)
    return per_level, baselines, min(direct_times), min(sched_times)


def test_scheduler_concurrency(benchmark, record_figure):
    per_level, baselines, direct_real, sched_real = run_once(benchmark, _run_all)
    overhead = (sched_real - direct_real) / direct_real

    accuracy = {}
    audited = []
    for n, (tasks, real) in per_level.items():
        errors = []
        for task in tasks:
            assert task.state == "finished", f"{task.name} ended {task.state}"
            final = task.log.final()
            assert final.fraction_done >= 1.0 - 1e-9, f"{task.name} stalled short"
            qname = task.name.split("-")[0].upper()
            err = _normalized_error(task.log, task.result.elapsed)
            errors.append(err)
            audited.append((n, task.name, qname, err))
        accuracy[n] = sum(errors) / len(errors)

    lines = [
        "Extension A5: cooperative scheduler, overhead and accuracy",
        f"  direct monitored Q1 (real)      : {direct_real * 1000:8.1f} ms",
        f"  scheduled at concurrency 1      : {sched_real * 1000:8.1f} ms",
        f"  scheduler real-time overhead    : {overhead * 100:8.2f} %",
        "",
        "  solo baselines (|err|/elapsed)  : "
        + "  ".join(f"{q}={e:.3f}" for q, e in baselines.items()),
        "",
        f"  {'concurrency':>12} {'slices':>8} {'clock (s)':>10} "
        f"{'mean |err|/elapsed':>20}",
    ]
    for n, (tasks, _real) in per_level.items():
        slices = sum(len(t.slices) for t in tasks)
        clock = max(t.finished_at for t in tasks)
        lines.append(
            f"  {n:>12} {slices:>8} {clock:>10.1f} {accuracy[n]:>20.3f}"
        )
    record_figure("concurrent_scheduler", "\n".join(lines))
    write_bench_json(
        "concurrent_scheduler",
        scalars={
            "direct_real_s": direct_real,
            "scheduled_real_s": sched_real,
            "scheduler_overhead": overhead,
        }
        | {f"solo_{q.lower()}_err": e for q, e in baselines.items()}
        | {f"c{n}_mean_err": accuracy[n] for n in per_level},
        meta={"scale": SCALE, "levels": list(LEVELS), "mix": list(MIX)},
    )

    # Slicing the executor must not blow up real run time (the quantum
    # check is one comparison per PULSE; pulses exist on both paths).
    assert overhead < 1.50
    # Per-query estimator accuracy stays within 2x of the same query's
    # single-query baseline (floored: see ACCURACY_FLOOR).
    for n, name, qname, err in audited:
        allowed = 2.0 * max(baselines[qname], ACCURACY_FLOOR)
        assert err <= allowed, (
            f"concurrency {n}, {name}: |err|/elapsed {err:.3f} > "
            f"{allowed:.3f} (solo {baselines[qname]:.3f})"
        )


def test_contention_emerges_without_interference(benchmark, record_figure):
    """Q1 alongside Q2: the interference-figure signature, no windows."""

    def _run():
        solo_db = _db()
        solo, solo_log = _direct_monitored(solo_db, queries.Q1)

        db = _db()
        session = db.connect()
        q1 = session.submit(queries.Q1, name="Q1", keep_rows=False)
        session.submit(queries.Q2, name="Q2", keep_rows=False)
        session.run()
        return solo, solo_log, q1.task

    solo, solo_log, q1 = run_once(benchmark, _run)

    record_figure(
        "concurrent_q1_remaining",
        render_table(
            {
                "indicator (s)": q1.log.remaining_series(),
                "actual (s)": [
                    (t, max(0.0, q1.result.elapsed - t))
                    for t, _ in q1.log.remaining_series()
                ],
            },
            title=(
                "Extension A5: Q1 remaining time while Q2 runs concurrently\n"
                f"(solo Q1: {solo.elapsed:.1f}s; "
                f"concurrent Q1: {q1.result.elapsed:.1f}s)"
            ),
        ),
    )

    write_bench_json(
        "concurrent_q1_remaining",
        series={
            "remaining_s": q1.log.remaining_series(),
            "actual_remaining_s": [
                (t, max(0.0, q1.result.elapsed - t))
                for t, _ in q1.log.remaining_series()
            ],
        },
        scalars={
            "solo_elapsed_s": solo.elapsed,
            "concurrent_elapsed_s": q1.result.elapsed,
        },
        meta={"scale": SCALE, "mix": ["Q1", "Q2"]},
    )

    # Contention stretches the scan.
    assert q1.result.elapsed > 1.3 * solo.elapsed
    # Observed speed under contention is lower than solo.
    solo_peak = max(v for _, v in solo_log.speed_series() if v is not None)
    loaded_peak = max(v for _, v in q1.log.speed_series() if v is not None)
    assert loaded_peak < solo_peak
    # The indicator still tracks the actual remaining time reasonably.
    err = metrics.mean_abs_error(
        q1.log.remaining_series(),
        [
            (t, max(0.0, q1.result.elapsed - t))
            for t, _ in q1.log.remaining_series()
        ],
    )
    assert err < 0.35 * q1.result.elapsed
