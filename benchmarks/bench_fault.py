"""EXP A7 — fault injection: disabled overhead and accuracy under faults.

Two measurements:

* **Disabled overhead** (real host time): the fault hooks sit on the
  disk's hot charge path (`_charge_read`/`_charge_write`).  With no
  injector installed they must cost one ``is None`` check per charged
  I/O — the same monitored Q2 run with ``faults=None`` vs a quiet
  (all-rates-zero) plan vs no hooks exercised is compared; the
  no-injector path must stay within a small factor of the seed path.
* **Estimator accuracy under faults**: a ~1% transient-fault schedule
  stretches I/O with retries and backoff.  The speed monitor observes
  the slowdown as reduced throughput (paper §4.6: load changes shift
  the speed estimate, the indicator keeps tracking), so the mean
  |remaining-time error| must stay within a bounded factor of the
  fault-free run's error.
"""

from __future__ import annotations

import time

from common import experiment_config, run_once, write_bench_json

from repro.bench import metrics
from repro.fault import FaultPlan, RetryPolicy
from repro.workloads import queries, tpcr

SCALE = 0.005

#: ~1% of charged reads hit a transient fault; every one recovers
#: within the default retry budget.
FAULTY_PLAN = FaultPlan(
    seed=42,
    transient_read_rate=0.01,
    transient_write_rate=0.005,
    max_repeat=2,
    retry=RetryPolicy(max_attempts=4),
)

#: Installed but inert: every rate zero.  Measures the cost of the
#: injector bookkeeping itself (rng draws are skipped at rate 0).
QUIET_PLAN = FaultPlan(seed=42)


def _db():
    return tpcr.build_database(scale=SCALE, config=experiment_config())


def _run_monitored(db, sql=queries.Q2):
    handle = db.connect().submit(sql, name="probe", keep_rows=False)
    result = handle.result()
    return result, handle.log


def _normalized_error(log, elapsed: float) -> float:
    actual = [(t, max(0.0, elapsed - t)) for t, _ in log.remaining_series()]
    return metrics.mean_abs_error(log.remaining_series(), actual) / elapsed


def _time_run(plan):
    db = _db()
    injector = db.install_faults(plan) if plan is not None else None
    t0 = time.perf_counter()
    result, log = _run_monitored(db)
    real = time.perf_counter() - t0
    if injector is not None:
        db.clear_faults()
    return real, result, log, injector


def _run_all():
    # Best-of-3 real times smooth host noise.
    clean_times, quiet_times = [], []
    clean_result = clean_log = None
    for _ in range(3):
        real, result, log, _ = _time_run(None)
        clean_times.append(real)
        clean_result, clean_log = result, log
    for _ in range(3):
        real, _, _, _ = _time_run(QUIET_PLAN)
        quiet_times.append(real)
    faulty_real, faulty_result, faulty_log, injector = _time_run(FAULTY_PLAN)
    return (
        min(clean_times), min(quiet_times),
        clean_result, clean_log,
        faulty_real, faulty_result, faulty_log, injector,
    )


def test_fault_injection_overhead_and_accuracy(benchmark, record_figure):
    (
        clean_real, quiet_real,
        clean_result, clean_log,
        faulty_real, faulty_result, faulty_log, injector,
    ) = run_once(benchmark, _run_all)

    quiet_overhead = (quiet_real - clean_real) / clean_real
    clean_err = _normalized_error(clean_log, clean_result.elapsed)
    faulty_err = _normalized_error(faulty_log, faulty_result.elapsed)

    lines = [
        "Extension A7: fault injection, overhead and accuracy (Q2)",
        f"  no injector (real)             : {clean_real * 1000:8.1f} ms",
        f"  quiet plan, all rates 0 (real) : {quiet_real * 1000:8.1f} ms",
        f"  quiet-plan real-time overhead  : {quiet_overhead * 100:8.2f} %",
        "",
        f"  ~1% transient schedule (real)  : {faulty_real * 1000:8.1f} ms",
        f"  faults injected / retries      : "
        f"{sum(injector.injected.values()):>5} / {injector.retries}",
        f"  virtual clock, clean vs faulty : "
        f"{clean_result.elapsed:8.1f}s vs {faulty_result.elapsed:8.1f}s",
        "",
        f"  |err|/elapsed, fault-free      : {clean_err:8.3f}",
        f"  |err|/elapsed, under faults    : {faulty_err:8.3f}",
    ]
    record_figure("fault_injection", "\n".join(lines))
    write_bench_json(
        "fault_injection",
        scalars={
            "clean_real_s": clean_real,
            "quiet_real_s": quiet_real,
            "quiet_overhead": quiet_overhead,
            "faulty_real_s": faulty_real,
            "faults_injected": sum(injector.injected.values()),
            "retries": injector.retries,
            "clean_elapsed_s": clean_result.elapsed,
            "faulty_elapsed_s": faulty_result.elapsed,
            "clean_err": clean_err,
            "faulty_err": faulty_err,
        },
        meta={
            "scale": SCALE,
            "query": "Q2",
            "transient_read_rate": FAULTY_PLAN.transient_read_rate,
            "transient_write_rate": FAULTY_PLAN.transient_write_rate,
        },
    )

    # The faulty run recovered everything: identical row counts.
    assert faulty_result.row_count == clean_result.row_count
    assert sum(injector.injected.values()) > 0 and injector.gave_up == 0

    # Retries and backoff stretch the virtual run time.
    assert faulty_result.elapsed > clean_result.elapsed

    # Disabled/quiet paths are near-free: one branch per charged I/O.
    # Generous real-time bound — host noise dominates at this scale.
    assert quiet_overhead < 0.50

    # The indicator keeps tracking under the fault schedule: error stays
    # within a bounded factor of the fault-free error (floored, since a
    # near-perfect clean run would make a ratio test unsatisfiable).
    assert faulty_err <= 3.0 * max(clean_err, 0.10)
