"""EXP A6 — byte-accounting granularity ablation.

The paper measures work in "bytes processed"; our scans can report those
bytes per *tuple* (as the consumer processes each row — the default) or
per *page* (all at once when the page is read).  For I/O-bound queries the
two are indistinguishable; for a CPU-bound consumer like Q5 — where one
8 KB page feeds ~20 virtual seconds of join work — page granularity
starves the 10-second speed window (zero bytes most windows), producing
undefined or wildly wrong remaining-time estimates.  This ablation
quantifies that: it is the reproduction's one non-obvious fidelity detail
and the reason the paper's Figure 19 works at all.
"""

from __future__ import annotations

from common import SCALE, experiment_config, run_once, write_bench_json

from repro.bench import metrics, run_experiment
from repro.workloads import queries, tpcr


def _run_with(granularity: str, sql: str, name: str):
    config = experiment_config().with_progress(scan_granularity=granularity)
    db = tpcr.build_database(scale=SCALE, config=config)
    return run_experiment(name, db, sql)


def _all():
    return {
        ("Q5", g): _run_with(g, queries.Q5, f"Q5-{g}") for g in ("tuple", "page")
    } | {
        ("Q1", g): _run_with(g, queries.Q1, f"Q1-{g}") for g in ("tuple", "page")
    }


def _remaining_error(result):
    act = dict(result.actual_remaining_series())
    errs = []
    undefined = 0
    for t, v in result.remaining_series():
        if t < 20.0:
            continue
        if v is None:
            undefined += 1
        else:
            errs.append(abs(v - act[t]))
    mean = sum(errs) / len(errs) if errs else float("inf")
    return mean, undefined


def test_ablation_scan_granularity(benchmark, record_figure):
    results = run_once(benchmark, _all)

    lines = [
        "Ablation A6: scan byte-reporting granularity",
        "(mean |est-actual| remaining after t=20s; undefined = reports with "
        "no speed estimate)",
        f"{'query':<6} {'granularity':<12} {'mean error (s)':>15} {'undefined':>10}",
        "-" * 48,
    ]
    stats = {}
    for (query, granularity), result in results.items():
        mean, undefined = _remaining_error(result)
        stats[(query, granularity)] = (mean, undefined)
        mean_text = f"{mean:.1f}" if mean != float("inf") else "inf"
        lines.append(
            f"{query:<6} {granularity:<12} {mean_text:>15} {undefined:>10}"
        )
    record_figure("ablation_granularity", "\n".join(lines))
    write_bench_json(
        "ablation_granularity",
        scalars={
            f"{query.lower()}_{granularity}_{field}": value
            for (query, granularity), (mean, undefined) in stats.items()
            for field, value in (
                ("mean_error_s", mean),
                ("undefined_reports", undefined),
            )
        },
        meta={"scale": SCALE, "cutoff_s": 20.0},
    )

    # CPU-bound Q5: tuple granularity must be far more accurate (or page
    # granularity mostly undefined).
    q5_tuple = stats[("Q5", "tuple")]
    q5_page = stats[("Q5", "page")]
    assert q5_tuple[0] < q5_page[0] or q5_page[1] > q5_tuple[1] * 2
    # I/O-bound Q1: granularity barely matters.
    q1_tuple = stats[("Q1", "tuple")]
    q1_page = stats[("Q1", "page")]
    assert abs(q1_tuple[0] - q1_page[0]) < 5.0
