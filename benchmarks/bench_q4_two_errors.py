"""EXP F18 — Figure 18: Q4 with estimation errors in both joins
(Section 5.5).

Q4 is Q2 plus a second unestimatable predicate, ``absolute(o.totalprice) >
0`` on orders, so *both* join cost estimates start wrong.  The figure: the
indicator adjusts twice — once while the first join runs (learning the
orders predicate's true selectivity) and again during the second join
(learning lineitem's).  The printed series marks the paper's vertical line
(first join finished / second join started).
"""

from __future__ import annotations

from common import (
    SCALE,
    experiment_config,
    experiment_scalars,
    experiment_series,
    run_once,
    write_bench_json,
)

from repro.bench import metrics, render_table, run_experiment
from repro.workloads import queries, tpcr


def _run():
    db = tpcr.build_database(scale=SCALE, config=experiment_config())
    return run_experiment("Q4-unloaded", db, queries.Q4)


def test_fig18_q4_two_adjustments(benchmark, record_figure):
    result = run_once(benchmark, _run)
    exact = result.exact_cost_pages
    # The first join's probe pipeline is the second segment to finish.
    first_join_end = sorted(t for _, t in result.segment_boundaries)[1]

    text = render_table(
        {
            "estimated cost (U)": result.estimated_cost_series(),
            "exact cost (U)": [(t, exact) for t, _ in result.estimated_cost_series()],
        },
        title=(
            "Figure 18: query cost estimated over time (unloaded, Q4)\n"
            f"(first join finishes / second join starts at t="
            f"{first_join_end:.0f}s)"
        ),
    )
    record_figure("fig18_q4_cost", text)
    write_bench_json(
        "q4_two_errors",
        series=experiment_series(result),
        scalars=experiment_scalars(result)
        | {"first_join_end_s": first_join_end},
        meta={"query": "Q4", "scale": SCALE, "figures": [18]},
    )

    series = result.estimated_cost_series()
    rises_before = rises_after = 0
    for (t0, v0), (t1, v1) in zip(series, series[1:]):
        if v1 > v0 * 1.005:
            if t1 <= first_join_end:
                rises_before += 1
            else:
                rises_after += 1
    # "the progress indicator makes adjustments to both optimizer
    # estimation errors twice as the query is being processed".
    assert rises_before > 0
    assert rises_after > 0
    # And it still converges to the exact cost.
    assert metrics.convergence_time(series, exact, 0.02) is not None
