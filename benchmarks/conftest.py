"""Pytest plumbing for the benchmark suite (fixtures only; shared
constants/helpers live in :mod:`common`)."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_figure():
    """Persist a rendered figure and echo it through print."""

    def recorder(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return recorder
