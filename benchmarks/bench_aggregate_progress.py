"""EXP A8 — progress for grouped queries (paper future work 3).

"It would be interesting to extend our techniques in order to support
wider classes of queries."  A hash aggregate is one more blocking
operator, so the segment model extends unchanged: the accumulate phase is
a segment whose output is the group table; the finalized groups stream
into the consumer.  The bench monitors an aggregation over the
customer-orders join and checks the usual indicator invariants, plus the
breakdown view attributing work to the aggregate segment.
"""

from __future__ import annotations

from common import (
    SCALE,
    experiment_config,
    experiment_scalars,
    experiment_series,
    run_once,
    write_bench_json,
)

from repro.bench import metrics, render_table, run_experiment
from repro.workloads import tpcr

SQL = """
select c.nationkey, count(*), avg(o.totalprice), max(o.totalprice)
from customer c, orders o
where c.custkey = o.custkey
group by c.nationkey
having count(*) > 10
order by c.nationkey
"""


def _run():
    db = tpcr.build_database(scale=SCALE, config=experiment_config())
    return run_experiment("group-by", db, SQL)


def test_grouped_query_progress(benchmark, record_figure):
    result = run_once(benchmark, _run)

    record_figure(
        "aggregate_progress",
        render_table(
            {
                "completed %": result.percent_series(),
                "remaining est (s)": result.remaining_series(),
                "remaining actual (s)": result.actual_remaining_series(),
            },
            title="Extension A8: progress of a grouped (GROUP BY/HAVING) query",
        ),
    )

    write_bench_json(
        "aggregate_progress",
        series=experiment_series(result),
        scalars=experiment_scalars(result),
        meta={"scale": SCALE, "query": "group-by/having over customer-orders"},
    )

    # The plan contains an aggregate segment in addition to the join's.
    assert result.num_segments >= 3
    # Indicator invariants hold for the wider query class.
    assert metrics.is_nondecreasing(result.percent_series())
    assert result.percent_series()[-1][1] == 100.0
    act = dict(result.actual_remaining_series())
    late = [
        (t, v)
        for t, v in result.remaining_series()
        if v is not None and t >= 0.6 * result.total_elapsed
    ]
    assert late
    for t, v in late:
        assert abs(v - act[t]) <= 0.25 * result.total_elapsed + 5.0
