"""EXP F13-F16 — Figures 13-16: Q2 under I/O interference (Section 5.3.2).

A large concurrent file copy (here a 3x I/O slowdown window starting at
t=120) stretches the query.  The paper's observations: the cost-estimate
curve still converges to the same exact value but *learns more slowly*
while the copy runs (Fig 13); speed visibly drops during the window and
recovers after (Fig 14); the remaining-time estimate jumps at the copy's
start and collapses at its end, staying far closer to actual than the
optimizer line (Fig 15); percent-done keeps rising, with the window's
imprint visible (Fig 16).
"""

from __future__ import annotations

from common import (
    SCALE,
    experiment_config,
    experiment_scalars,
    experiment_series,
    run_once,
    write_bench_json,
)

from repro.bench import metrics, render_table, run_experiment
from repro.sim.load import LoadProfile
from repro.workloads import queries, tpcr

COPY_START = 120.0
COPY_END = 400.0
SLOWDOWN = 3.0


def _run():
    db = tpcr.build_database(scale=SCALE, config=experiment_config())
    load = LoadProfile.file_copy(COPY_START, COPY_END, SLOWDOWN)
    unloaded_db = tpcr.build_database(scale=SCALE, config=experiment_config())
    unloaded = run_experiment("Q2-unloaded", unloaded_db, queries.Q2)
    loaded = run_experiment("Q2-io", db, queries.Q2, load=load)
    return unloaded, loaded


def test_fig13_to_16_q2_io_interference(benchmark, record_figure):
    unloaded, result = run_once(benchmark, _run)
    exact = result.exact_cost_pages

    header = (
        f"(file copy active from t={COPY_START:.0f}s to t={COPY_END:.0f}s, "
        f"{SLOWDOWN:.0f}x I/O slowdown)"
    )
    record_figure(
        "fig13_q2io_cost",
        render_table(
            {
                "estimated cost (U)": result.estimated_cost_series(),
                "exact cost (U)": [
                    (t, exact) for t, _ in result.estimated_cost_series()
                ],
            },
            title=f"Figure 13: estimated cost, I/O interference {header}",
        ),
    )
    record_figure(
        "fig14_q2io_speed",
        render_table(
            {"speed (U/s)": result.speed_series()},
            title=f"Figure 14: execution speed, I/O interference {header}",
        ),
    )
    record_figure(
        "fig15_q2io_remaining",
        render_table(
            {
                "indicator (s)": result.remaining_series(),
                "actual (s)": result.actual_remaining_series(),
                "optimizer (s)": result.optimizer_remaining_series(),
            },
            title=f"Figure 15: remaining time, I/O interference {header}",
        ),
    )
    record_figure(
        "fig16_q2io_percent",
        render_table(
            {"completed %": result.percent_series()},
            title=f"Figure 16: completed percentage, I/O interference {header}",
        ),
    )

    write_bench_json(
        "q2_io_interference",
        series=experiment_series(result),
        scalars=experiment_scalars(result)
        | {"unloaded_elapsed_s": unloaded.total_elapsed},
        meta={
            "query": "Q2",
            "scale": SCALE,
            "figures": [13, 14, 15, 16],
            "copy_start_s": COPY_START,
            "copy_end_s": COPY_END,
            "io_slowdown": SLOWDOWN,
        },
    )

    # The copy stretches the query (paper: 510s -> 1027s).
    assert result.total_elapsed > 1.2 * unloaded.total_elapsed
    # Fig 13: same exact cost, later convergence than unloaded.
    assert exact == metrics.value_near(
        result.estimated_cost_series(), result.total_elapsed
    )
    t_loaded = metrics.convergence_time(result.estimated_cost_series(), exact, 0.02)
    t_unloaded = metrics.convergence_time(
        unloaded.estimated_cost_series(), unloaded.exact_cost_pages, 0.02
    )
    assert t_loaded > t_unloaded
    # Fig 14: speed drops inside the window.
    speeds = result.speed_series()
    before = [v for t, v in speeds if v is not None and t < COPY_START - 10]
    during = [
        v
        for t, v in speeds
        if v is not None and COPY_START + 60 < t < COPY_END - 10
    ]
    assert min(before) > max(during)
    # Fig 15: jump at onset, drop at the end.
    rem = result.remaining_series()
    assert metrics.value_near(rem, COPY_START + 45) > metrics.value_near(
        rem, COPY_START - 5
    )
    assert metrics.value_near(rem, COPY_END + 30) < metrics.value_near(
        rem, COPY_END - 10
    )
