"""EXP F17 — Figure 17: Q3 and correlation-induced estimation errors
(Section 5.4).

The orders relation is regenerated so customers with nationkey < 10 place
20 orders, nationkey 10-19 place none, and 20-24 place 10 — the overall
average stays 10, so table statistics look unchanged.  Q3 filters
``c.nationkey < 10`` and joins; the optimizer's independence assumption
underestimates the first join's cardinality 2x.  The figure: the cost
estimate starts too low, ramps while the first join's probe runs, reaches
the exact cost and stays constant.
"""

from __future__ import annotations

from common import (
    SCALE,
    experiment_config,
    experiment_scalars,
    experiment_series,
    run_once,
    write_bench_json,
)

from repro.bench import metrics, render_table, run_experiment
from repro.workloads import correlated, queries


def _run():
    db = correlated.build_database(scale=SCALE, config=experiment_config())
    return run_experiment("Q3-correlated", db, queries.Q3)


def test_fig17_q3_correlation(benchmark, record_figure):
    result = run_once(benchmark, _run)
    exact = result.exact_cost_pages

    record_figure(
        "fig17_q3_cost",
        render_table(
            {
                "estimated cost (U)": result.estimated_cost_series(),
                "exact cost (U)": [
                    (t, exact) for t, _ in result.estimated_cost_series()
                ],
            },
            title="Figure 17: query cost estimated over time (unloaded, Q3, "
            "correlated data)",
        ),
    )

    write_bench_json(
        "q3_correlation",
        series=experiment_series(result),
        scalars=experiment_scalars(result),
        meta={"query": "Q3", "scale": SCALE, "figures": [17],
              "generator": "correlated"},
    )

    cost = result.estimated_cost_series()
    # Starts too low because of the correlation the optimizer cannot see.
    assert cost[0][1] < 0.95 * exact
    # Ramps up to the exact cost and stays there.
    converged = metrics.convergence_time(cost, exact, tolerance=0.02)
    assert converged is not None and converged < result.total_elapsed
    tail = [v for t, v in cost if t >= converged]
    assert max(tail) - min(tail) <= 0.03 * max(tail)
