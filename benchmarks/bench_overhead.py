"""EXP OV — the paper's overhead claim (Sections 1 and 5).

"In all our tests, our prototyped progress indicators could be updated
every ten seconds with less than 1% overhead."

Two measurements:

* **Real (host) time**: the same Q2 execution with and without the
  tracker attached, timed by pytest-benchmark.  The monitored run pays a
  few float additions per tuple; we assert the penalty stays small (the
  bound is looser than 1% because pure-Python per-tuple work is a far
  larger fraction of run time here than in PostgreSQL's C executor).
* **Simulated time**: must be *identical* — monitoring charges no
  virtual time, which is this engine's idealization of the <1% claim.

A third measurement covers the observability layer: the same monitored
run with a ``TraceBus`` attached vs without.  Tracing records per-page
and per-tick events, so it is allowed to cost real time — but it must
charge **zero virtual time**, and the real-time penalty over the already
monitored run must stay under 100% (tracing at most doubles a run; the
disabled path is a single ``is not None`` test per hook).
"""

from __future__ import annotations

import time

from common import experiment_config, write_bench_json

from repro.workloads import queries, tpcr

SCALE = 0.005  # smaller scale: this bench runs the query many times


def _db():
    return tpcr.build_database(scale=SCALE, config=experiment_config())


def test_overhead_monitored_vs_plain(benchmark, record_figure):
    plain_db = _db()
    monitored_db = _db()

    def monitored_run():
        monitored_db.restart()
        return (
            monitored_db.connect()
            .submit(queries.Q2, name="Q2", keep_rows=False)
            .monitored()
        )

    # Time the monitored path under pytest-benchmark...
    monitored = benchmark.pedantic(monitored_run, rounds=3, iterations=1)

    # ...and the unmonitored path manually for the comparison.
    plain_times = []
    for _ in range(3):
        plain_db.restart()
        t0 = time.perf_counter()
        plain = plain_db.connect().execute(queries.Q2, keep_rows=False)
        plain_times.append(time.perf_counter() - t0)

    monitored_times = []
    for _ in range(3):
        t0 = time.perf_counter()
        monitored_run()
        monitored_times.append(time.perf_counter() - t0)

    plain_real = min(plain_times)
    monitored_real = min(monitored_times)
    overhead = (monitored_real - plain_real) / plain_real

    record_figure(
        "overhead",
        "\n".join(
            [
                "Indicator overhead (paper claim: < 1% on PostgreSQL)",
                f"  plain run (real)     : {plain_real * 1000:8.1f} ms",
                f"  monitored run (real) : {monitored_real * 1000:8.1f} ms",
                f"  real-time overhead   : {overhead * 100:8.2f} %",
                f"  simulated elapsed    : identical "
                f"({monitored.result.elapsed:.2f} virtual s monitored vs "
                f"{plain.elapsed:.2f} plain)",
                f"  reports emitted      : {len(monitored.log)} "
                "(one per 10 virtual seconds)",
            ]
        ),
    )

    write_bench_json(
        "overhead",
        scalars={
            "plain_real_s": plain_real,
            "monitored_real_s": monitored_real,
            "real_overhead": overhead,
            "simulated_elapsed_s": monitored.result.elapsed,
            "reports_emitted": len(monitored.log),
        },
        meta={"query": "Q2", "scale": SCALE, "rounds": 3},
    )

    # Simulated time is exactly unchanged by monitoring.
    assert monitored.result.elapsed == plain.elapsed
    # Real-time penalty of the counting hot path stays modest even in
    # pure Python (PostgreSQL's C implementation measured < 1%).
    assert overhead < 0.60


def test_overhead_tracing_on_vs_off(benchmark, record_figure):
    """Tracing: zero virtual cost, bounded real cost over monitoring."""
    from repro.obs import TraceBus

    # Separate instances so both sides replay the exact same virtual-clock
    # trajectory (elapsed values can then be compared bit-for-bit).
    bench_db, off_db, on_db = _db(), _db(), _db()

    def run(db, trace):
        db.restart()
        return (
            db.connect()
            .submit(queries.Q2, name="Q2", keep_rows=False, trace=trace)
            .monitored()
        )

    traced = benchmark.pedantic(
        lambda: run(bench_db, TraceBus()), rounds=3, iterations=1
    )

    off_times, on_times = [], []
    for _ in range(3):
        t0 = time.perf_counter()
        off = run(off_db, False)
        off_times.append(time.perf_counter() - t0)
    for _ in range(3):
        t0 = time.perf_counter()
        on = run(on_db, TraceBus())
        on_times.append(time.perf_counter() - t0)

    off_real = min(off_times)
    on_real = min(on_times)
    overhead = (on_real - off_real) / off_real

    record_figure(
        "overhead_tracing",
        "\n".join(
            [
                "Tracing overhead (TraceBus on vs off, monitored run)",
                f"  tracing off (real)   : {off_real * 1000:8.1f} ms",
                f"  tracing on (real)    : {on_real * 1000:8.1f} ms",
                f"  real-time overhead   : {overhead * 100:8.2f} %",
                f"  events recorded      : {len(traced.trace.events)}",
                f"  simulated elapsed    : identical "
                f"({on.result.elapsed:.2f} virtual s traced vs "
                f"{off.result.elapsed:.2f} untraced)",
            ]
        ),
    )

    write_bench_json(
        "overhead_tracing",
        scalars={
            "tracing_off_real_s": off_real,
            "tracing_on_real_s": on_real,
            "real_overhead": overhead,
            "events_recorded": len(traced.trace.events),
            "simulated_elapsed_s": on.result.elapsed,
        },
        meta={"query": "Q2", "scale": SCALE, "rounds": 3},
    )

    # Tracing charges no virtual time: the simulation is bit-identical.
    assert on.result.elapsed == off.result.elapsed
    assert off.trace is None
    assert len(on.trace.events) > 0
    # Stated bound: recording every page access and refinement tick may
    # at most double the real run time of an already monitored query.
    assert overhead < 1.00
