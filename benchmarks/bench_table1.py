"""EXP T1 — Table 1: the test data set (Section 5.1).

Regenerates the paper's data-set table at the benchmark scale and projects
the full-scale (scale = 1.0) numbers for side-by-side comparison with the
paper's row counts and megabyte sizes.
"""

from __future__ import annotations

from common import SCALE, run_once, write_bench_json

from repro.workloads import tpcr

#: The paper's Table 1: relation -> (tuples, total size in MB).
PAPER_TABLE1 = {
    "customer": (150_000, 23.0),
    "orders": (1_500_000, 114.0),
    "lineitem": (6_000_000, 755.0),
    "customer_subset1": (3_000, 0.46),
    "customer_subset2": (3_000, 0.46),
}


def _build():
    return tpcr.build_database(scale=SCALE)


def test_table1_data_set(benchmark, record_figure):
    db = run_once(benchmark, _build)

    lines = [
        "Table 1: test data set (paper values at scale 1.0; ours at "
        f"scale {SCALE})",
        f"{'relation':<18} {'tuples':>10} {'size(MB)':>10}   "
        f"{'paper tuples':>13} {'paper MB':>9}   {'proj. MB @1.0':>13}",
        "-" * 82,
    ]
    relations = {}
    for name, (paper_rows, paper_mb) in PAPER_TABLE1.items():
        table = db.catalog.get_table(name)
        size_mb = table.heap.total_bytes / 1e6
        if name.startswith("customer_subset"):
            projected = size_mb  # subsets are fixed-size in the paper
        else:
            projected = size_mb / SCALE
        relations[name] = {
            "tuples": table.num_tuples,
            "size_mb": size_mb,
            "paper_tuples": paper_rows,
            "paper_mb": paper_mb,
            "projected_mb_at_scale_1": projected,
        }
        lines.append(
            f"{name:<18} {table.num_tuples:>10} {size_mb:>10.2f}   "
            f"{paper_rows:>13} {paper_mb:>9.2f}   {projected:>13.1f}"
        )
    record_figure("table1_data_set", "\n".join(lines))
    write_bench_json(
        "table1_data_set",
        scalars={"scale": SCALE},
        meta={"relations": relations},
    )

    # Shape assertions: cardinality ratios are the paper's exactly.
    customer = db.catalog.get_table("customer")
    orders = db.catalog.get_table("orders")
    lineitem = db.catalog.get_table("lineitem")
    assert orders.num_tuples == 10 * customer.num_tuples
    assert lineitem.num_tuples == 4 * orders.num_tuples
    # Size ordering matches Table 1: lineitem >> orders >> customer.
    assert lineitem.heap.total_bytes > 4 * orders.heap.total_bytes
    assert orders.heap.total_bytes > 3 * customer.heap.total_bytes
