"""EXP A7 — warm buffer pool (paper Section 5.1, parenthetical).

"We repeated our experiments with a warm buffer pool.  The results were
similar, so we do not present them here."  We present them: Q2 run twice
without restarting — the second run hits the buffer pool, so it is much
faster in wall time, but the indicator's qualitative behaviour is
unchanged: the initial cost estimate is identical (cost in U does not
depend on caching), the estimate still ramps to the same exact value, and
the remaining-time estimate still converges — the speed monitor simply
observes a higher U/s.
"""

from __future__ import annotations

import pytest
from common import SCALE, experiment_config, run_once, write_bench_json

from repro.bench import metrics, render_table, run_experiment
from repro.workloads import queries, tpcr


def _run():
    db = tpcr.build_database(scale=SCALE, config=experiment_config())
    cold = run_experiment("Q2-cold", db, queries.Q2)
    # No restart: the pool keeps the pages the first run read.
    warm = db.connect().submit(queries.Q2, name="Q2-warm", keep_rows=False).monitored()
    return cold, warm


def test_warm_buffer_pool(benchmark, record_figure):
    cold, warm_monitored = run_once(benchmark, _run)
    warm_log = warm_monitored.log

    record_figure(
        "warm_cache",
        render_table(
            {
                "cold cost (U)": cold.estimated_cost_series(),
                "warm cost (U)": warm_log.estimated_cost_series(),
            },
            title=(
                "Extension A7: Q2 estimated cost, cold vs warm buffer pool\n"
                f"(cold run {cold.total_elapsed:.0f}s, warm run "
                f"{warm_log.total_elapsed:.0f}s of virtual time)"
            ),
        ),
    )

    write_bench_json(
        "warm_cache",
        series={
            "cold_cost_pages": cold.estimated_cost_series(),
            "warm_cost_pages": warm_log.estimated_cost_series(),
        },
        scalars={
            "cold_elapsed_s": cold.total_elapsed,
            "warm_elapsed_s": warm_log.total_elapsed,
            "exact_cost_pages": cold.exact_cost_pages,
        },
        meta={"query": "Q2", "scale": SCALE},
    )

    # Warm run is faster in time (base-table reads become pool hits; the
    # spill-partition I/O of the multi-batch join is unaffected)...
    assert warm_log.total_elapsed < 0.8 * cold.total_elapsed
    # ...but the work and the estimates are the same U story.
    assert warm_log.reports[0].est_cost_pages == pytest.approx(
        cold.estimated_cost_series()[0][1], rel=0.05
    )
    assert warm_log.final().est_cost_pages == pytest.approx(
        cold.exact_cost_pages, rel=0.02
    )
    # The warm indicator converges to the exact cost too.
    converged = metrics.convergence_time(
        warm_log.estimated_cost_series(), warm_log.final().est_cost_pages, 0.02
    )
    assert converged is not None
