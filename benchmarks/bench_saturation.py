"""EXP A9 — service saturation: overload behavior at 100/1k/10k in flight.

The tentpole claim of the service layer is *degrade, don't die*: under a
flood of submissions and an injected fault schedule, the admission
controller bounds the active set, the fair-share policy keeps slices
flowing, and the progress-driven shedding loop evicts queries predicted
to miss their deadlines so the capacity they would have burned goes to
queries that can still make theirs.

Each level submits N queries up front (two thirds light scans/joins with
makeable deadlines, one third heavy three-way joins with tight ones),
admission-bounded to 64 in flight, under a seeded mild chaos plan
(transient I/O faults with recovery, a slow-disk window, a buffer
pressure window).  Everything runs on the virtual clock from one seed,
so the whole experiment is deterministic — the smoke test replays a
level twice and asserts identical outcomes.

Measurements per level, shedding off vs on, same seed:

* queries/sec — virtual (throughput on the engine's clock) and real
  (host wall time, the harness cost);
* p99 submit-to-first-report latency: the virtual delay between
  ``service.submit`` and the query's first indicator report, including
  any admission-queue wait;
* deadline-hit rate: fraction of submissions that finished before their
  deadline.  The acceptance bar is shedding-on strictly better than
  shedding-off at every level.

The 1k run doubles as the invariant audit: every admitted query retires
exactly once (counted via a wrapped ``on_retire``), ends in exactly one
terminal state with a finalized indicator and monotone progress reports,
and the shared engine state (buffer pins, temp files, per-tenant
accounting) settles to zero.
"""

from __future__ import annotations

import math
import random
import time
from collections import Counter

from common import run_once, write_bench_json

from repro.config import SystemConfig
from repro.fault.plan import BufferPressureWindow, FaultPlan, SlowDiskWindow
from repro.sched.task import DONE_STATES
from repro.workloads import tpcr

SEED = 7
LEVELS = (100, 1_000, 10_000)
#: Admission bound: the scheduler's active set never exceeds this, no
#: matter how many submissions are waiting in the admission queue.
MAX_INFLIGHT = 64
#: The level whose run carries the full invariant audit.
AUDIT_LEVEL = 1_000

LIGHT = (
    "select * from lineitem",
    "select * from customer",
    "select c.custkey, o.totalprice from customer c, orders o "
    "where c.custkey = o.custkey",
)
HEAVY = (
    "select c.custkey, o.totalprice, l.extendedprice "
    "from customer c, orders o, lineitem l "
    "where c.custkey = o.custkey and o.orderkey = l.orderkey"
)


def _fault_plan(seed: int) -> FaultPlan:
    """Mild chaos: faults perturb timing and force retries/evictions but
    every query remains completable — failures would muddy the hit-rate
    comparison the bench exists to make."""
    return FaultPlan(
        seed=seed,
        transient_read_rate=0.008,
        transient_write_rate=0.004,
        max_repeat=1,
        slow_windows=(
            SlowDiskWindow(start=5.0, end=25.0, factor=2.5, period=60.0),
        ),
        pressure_windows=(
            BufferPressureWindow(
                start=10.0, end=20.0, reserved_frames=8, period=50.0
            ),
        ),
    )


def _config(level: int, shedding: bool) -> SystemConfig:
    return SystemConfig(work_mem_pages=8, buffer_pool_pages=24).with_service(
        max_inflight=MAX_INFLIGHT,
        admission_queue_limit=2 * level,
        shedding=shedding,
        policy_interval=2.0,
        deprioritize_after=1,
        shed_after=2,
    )


def _p99(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)]


def _run_level(level: int, shedding: bool, audit: bool = False) -> dict:
    db = tpcr.build_database(
        scale=0.002, subset_rows=60, config=_config(level, shedding)
    )
    db.install_faults(_fault_plan(SEED))
    service = db.service()

    retired: Counter = Counter()
    if audit:
        inner = service.scheduler.on_retire

        def counting_retire(task):
            retired[task.name] += 1
            inner(task)

        service.scheduler.on_retire = counting_retire

    # Same rng seed for shedding on and off: identical workloads, so the
    # hit-rate comparison isolates the policy.
    rng = random.Random(SEED)
    start_clock = db.clock.now
    handles = []
    for i in range(level):
        if i % 3 == 0:
            sql, timeout = HEAVY, rng.uniform(40.0, 90.0)
        else:
            sql, timeout = LIGHT[i % len(LIGHT)], rng.uniform(80.0, 250.0)
        handles.append(
            service.submit(
                sql, name=f"s{i}", keep_rows=False, timeout=timeout
            )
        )

    t0 = time.perf_counter()
    steps = 0
    while service.step() is not None:
        steps += 1
    wall = time.perf_counter() - t0
    vclock = db.clock.now - start_clock

    states = Counter(h.state for h in handles)
    hits = states.get("finished", 0)
    latencies = [
        first - h.submitted_at
        for h in handles
        if (first := h.first_report_time()) is not None
    ]

    violations: list[str] = []
    if audit:
        admitted = [h for h in handles if h.task is not None]
        if sorted(retired) != sorted(h.name for h in admitted):
            violations.append("retired set != admitted set")
        violations.extend(
            f"{name}: retired {n} times" for name, n in retired.items() if n != 1
        )
        for h in admitted:
            task = h.task
            if task.state not in DONE_STATES:
                violations.append(f"{task.name}: non-terminal {task.state}")
            if task.indicator is not None and not task.indicator.finalized:
                violations.append(f"{task.name}: indicator not finalized")
            if task.log is not None:
                done = [r.done_pages for r in task.log.reports]
                if any(b < a - 1e-9 for a, b in zip(done, done[1:])):
                    violations.append(f"{task.name}: done_pages regressed")
        if service.inflight != 0:
            violations.append(f"inflight {service.inflight} != 0")
        for tenant in service.tenants:
            if tenant.inflight or tenant.inflight_cost_pages:
                violations.append(f"tenant {tenant.name}: accounting leak")
        if db.buffer_pool.pinned_count != 0:
            violations.append(f"{db.buffer_pool.pinned_count} pages pinned")
        if db.disk.temp_file_count() != 0:
            violations.append(f"{db.disk.temp_file_count()} temp files leaked")

    return {
        "level": level,
        "shedding": shedding,
        "steps": steps,
        "wall_s": wall,
        "vclock_s": vclock,
        "hits": hits,
        "hit_rate": hits / level,
        "states": dict(states),
        "shed": service.counters["shed"],
        "deprioritized": service.counters["deprioritized"],
        "qps_virtual": level / vclock,
        "qps_real": level / wall,
        "p99_first_report_s": _p99(latencies),
        "violations": violations,
        # Determinism signature: outcome of every submission plus the
        # exact interleaving footprint.
        "signature": (
            tuple(h.state for h in handles),
            steps,
            round(vclock, 9),
        ),
    }


def _render(rows: list[dict]) -> str:
    lines = [
        "Extension A9: service saturation under seeded chaos "
        f"(seed {SEED}, max_inflight {MAX_INFLIGHT})",
        f"  {'in flight':>10} {'shedding':>9} {'hit rate':>9} "
        f"{'shed':>6} {'depri':>6} {'p99 first report':>17} "
        f"{'q/s virt':>9} {'q/s real':>9}",
    ]
    for r in rows:
        lines.append(
            f"  {r['level']:>10} {'on' if r['shedding'] else 'off':>9} "
            f"{r['hit_rate']:>9.3f} {r['shed']:>6} {r['deprioritized']:>6} "
            f"{r['p99_first_report_s']:>15.1f} s "
            f"{r['qps_virtual']:>9.2f} {r['qps_real']:>9.0f}"
        )
    return "\n".join(lines)


def _assert_shedding_strictly_better(off: dict, on: dict) -> None:
    assert on["hit_rate"] > off["hit_rate"], (
        f"level {on['level']}: shedding-on hit rate {on['hit_rate']:.3f} "
        f"not strictly better than off {off['hit_rate']:.3f}"
    )
    # Degrade, don't die: chaos may slow queries but never kills one.
    for r in (off, on):
        assert r["states"].get("failed", 0) == 0, r["states"]


def test_saturation_smoke(benchmark, record_figure):
    """CI-sized run: one level, invariant audit, determinism replay."""

    def _run():
        off = _run_level(100, shedding=False)
        on = _run_level(100, shedding=True, audit=True)
        replay = _run_level(100, shedding=True)
        return off, on, replay

    off, on, replay = run_once(benchmark, _run)
    assert on["violations"] == []
    assert on["signature"] == replay["signature"], "saturation run not deterministic"
    _assert_shedding_strictly_better(off, on)
    assert on["shed"] > 0  # the policy actually evicts, not just demotes
    record_figure("saturation_smoke", _render([off, on]))


def test_saturation(benchmark, record_figure):
    """The full sweep; writes the committed figure and JSON document."""

    def _run():
        rows = []
        for level in LEVELS:
            off = _run_level(level, shedding=False)
            on = _run_level(level, shedding=True, audit=level == AUDIT_LEVEL)
            rows.extend((off, on))
        return rows

    rows = run_once(benchmark, _run)
    by_mode: dict[bool, list[dict]] = {False: [], True: []}
    for r in rows:
        by_mode[r["shedding"]].append(r)
    for off, on in zip(by_mode[False], by_mode[True]):
        _assert_shedding_strictly_better(off, on)
        if on["level"] == AUDIT_LEVEL:
            assert on["violations"] == [], on["violations"]
            assert on["shed"] > 0

    record_figure("saturation", _render(rows))
    write_bench_json(
        "saturation",
        series={
            "hit_rate_shed_off": [
                (r["level"], r["hit_rate"]) for r in by_mode[False]
            ],
            "hit_rate_shed_on": [
                (r["level"], r["hit_rate"]) for r in by_mode[True]
            ],
            "p99_first_report_s_off": [
                (r["level"], r["p99_first_report_s"]) for r in by_mode[False]
            ],
            "p99_first_report_s_on": [
                (r["level"], r["p99_first_report_s"]) for r in by_mode[True]
            ],
        },
        scalars={
            f"l{r['level']}_{'on' if r['shedding'] else 'off'}_{key}": r[key]
            for r in rows
            for key in (
                "hit_rate", "qps_virtual", "qps_real",
                "p99_first_report_s", "shed", "deprioritized",
            )
        },
        meta={
            "seed": SEED,
            "levels": list(LEVELS),
            "max_inflight": MAX_INFLIGHT,
            "audit_level": AUDIT_LEVEL,
            "audit_violations": next(
                r["violations"]
                for r in rows
                if r["shedding"] and r["level"] == AUDIT_LEVEL
            ),
            "fault_plan": {
                "transient_read_rate": 0.008,
                "transient_write_rate": 0.004,
                "max_repeat": 1,
                "slow_window": [5.0, 25.0, 2.5, 60.0],
                "pressure_window": [10.0, 20.0, 8, 50.0],
            },
        },
    )
