"""EXP F4-F7 — Figures 4-7: query Q1 on an unloaded system (Section 5.2).

Q1 is a pure table scan; ANALYZE knows the lineitem size exactly, so the
paper's point is that everything is flat/linear: the cost estimate is a
straight line (Fig 4), the speed is stable (Fig 5), the remaining-time
estimate coincides with the actual line and beats — but not by much — the
optimizer's estimate (Fig 6), and the completed percentage is linear
(Fig 7).
"""

from __future__ import annotations

from common import (
    SCALE,
    experiment_config,
    experiment_scalars,
    experiment_series,
    run_once,
    write_bench_json,
)

from repro.bench import metrics, render_table, run_experiment
from repro.workloads import queries, tpcr


def _run():
    db = tpcr.build_database(scale=SCALE, config=experiment_config())
    return run_experiment("Q1-unloaded", db, queries.Q1)


def test_fig4_to_7_q1_unloaded(benchmark, record_figure):
    result = run_once(benchmark, _run)

    record_figure(
        "fig04_q1_cost",
        render_table(
            {"estimated cost (U)": result.estimated_cost_series()},
            title="Figure 4: query cost estimated over time (unloaded, Q1)",
        ),
    )
    record_figure(
        "fig05_q1_speed",
        render_table(
            {"speed (U/s)": result.speed_series()},
            title="Figure 5: query execution speed over time (unloaded, Q1)",
        ),
    )
    record_figure(
        "fig06_q1_remaining",
        render_table(
            {
                "indicator (s)": result.remaining_series(),
                "actual (s)": result.actual_remaining_series(),
                "optimizer (s)": result.optimizer_remaining_series(),
            },
            title="Figure 6: remaining execution time over time (unloaded, Q1)",
        ),
    )
    record_figure(
        "fig07_q1_percent",
        render_table(
            {"completed %": result.percent_series()},
            title="Figure 7: completed percentage over time (unloaded, Q1)",
        ),
    )
    write_bench_json(
        "q1_unloaded",
        series=experiment_series(result),
        scalars=experiment_scalars(result),
        meta={"query": "Q1", "scale": SCALE, "figures": [4, 5, 6, 7]},
    )

    # Figure 4: "almost a straight line".
    cost = result.estimated_cost_series()
    assert metrics.series_max(cost) - metrics.series_min(cost) <= 0.02 * metrics.series_max(cost)
    # Figure 6: the indicator's curve is closer to actual than the
    # optimizer's, and the optimizer's is itself "not far".
    ind = metrics.mean_abs_error(result.remaining_series(), result.actual_remaining_series())
    opt = metrics.mean_abs_error(
        result.optimizer_remaining_series(), result.actual_remaining_series()
    )
    assert ind < opt
    # Figure 7: linear completion.
    for t, pct in result.percent_series():
        assert abs(pct - 100.0 * t / result.total_elapsed) < 8.0
